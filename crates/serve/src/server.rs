//! The batch inference server: admission control and job records over
//! the `gcln-sched` stage-graph scheduler, fronted by the hand-rolled
//! HTTP layer ([`crate::http`]).
//!
//! Life of a job:
//!
//! 1. `POST /jobs` passes the per-client rate limiter (token bucket
//!    keyed by `x-client-id` or peer IP → `429` + `Retry-After`),
//!    parses the body, resolves the spec through the [`SpecCache`]
//!    (content-hash memoized), and submits to the scheduler — or
//!    answers `503` + `Retry-After` when the server is at capacity
//!    (backpressure instead of latency collapse). The client's
//!    remaining rate allowance becomes the job's scheduler priority,
//!    so a burst-heavy client degrades its own latency first.
//! 2. The scheduler interleaves the job's stage tasks (trace, training
//!    attempts, extraction, checking) with every other job's across one
//!    shared worker pool; each event is appended to the record as a
//!    pre-serialized JSON line, in per-job order.
//! 3. On completion the record flips to `done` and — when a journal is
//!    configured — one JSON line is appended (and the journal is
//!    compacted once it outgrows its size threshold), so a restarted
//!    server replays results without re-running inference.
//!
//! `DELETE /jobs/{id}` trips the token; the engine stops cooperatively
//! at the next task boundary and the record keeps its partial events
//! and invariants (`"stopped":"cancelled"`). `GET /metrics` exposes
//! the scheduler's stage-latency histograms, queue wait, worker
//! utilization, and cache hit ratios in Prometheus text format.
//!
//! Determinism: the scheduler drives the same stage machine as a solo
//! `Engine::run` and both caches are keyed purely by content, so
//! concurrent submissions of the same source produce bit-identical
//! results and event streams (modulo the wall-clock `ms` fields) at any
//! worker count.

use crate::cache::SpecCache;
use crate::http::{read_request, Limits, Request, Response};
use crate::journal::{FsyncPolicy, Journal};
use crate::json::Json;
use gcln_faults::{site, Faults};
use crate::limiter::{Admission, RateLimit, RateLimiter};
use gcln_engine::cache::TraceCache;
use gcln_engine::events::json_string;
use gcln_engine::{CancelToken, Engine, Event, Job, PipelineConfig};
use gcln_sched::{Granularity, JobEvent, SchedConfig, Scheduler, SubmitOptions};
use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration; see `gcln serve` for the CLI spelling.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind host (loopback by default — put a real proxy in front for
    /// anything public).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (reported by
    /// [`ServerHandle::local_addr`] and the CLI's `listening on` line).
    pub port: u16,
    /// Scheduler worker threads (the HTTP layer has its own
    /// thread-per-connection accept loop).
    pub workers: usize,
    /// Admission bound: submissions are rejected with `503` once more
    /// than `queue_cap` jobs are waiting beyond the pool width (i.e. at
    /// most `workers + queue_cap` unfinished jobs are admitted).
    pub queue_cap: usize,
    /// JSON-lines job journal path (`None` = no persistence).
    pub journal: Option<PathBuf>,
    /// Compact the journal (rewrite it with only the retained job
    /// records) when it exceeds this many bytes. `None` disables
    /// compaction.
    pub journal_compact_bytes: Option<u64>,
    /// Per-client rate limit on `POST /jobs` (`None` = unlimited).
    pub rate_limit: Option<RateLimit>,
    /// Completed-job records retained in memory (oldest evicted
    /// beyond this; queued/running jobs are never evicted). Evicted
    /// results remain in the journal until compaction, which caps it
    /// the same way. Bounds a long-lived server's memory.
    pub max_retained_jobs: usize,
    /// Ceiling on every job's wall-clock deadline (`None` = unlimited).
    /// Submissions without `deadline_secs` get exactly this deadline;
    /// requested deadlines are clamped to it. Keeps one pathological
    /// job from pinning a worker forever.
    pub max_job_time: Option<Duration>,
    /// HTTP parser limits.
    pub limits: Limits,
    /// Socket read timeout per connection (slowloris guard — a peer
    /// dribbling a request slower than this gets a 408).
    /// `Duration::ZERO` disables the timeout.
    pub read_timeout: Duration,
    /// Socket write timeout per connection. `Duration::ZERO` disables.
    pub write_timeout: Duration,
    /// Whether `append`ed journal records are fsynced individually.
    pub journal_fsync: FsyncPolicy,
    /// Deterministic fault injection plan, threaded into the scheduler
    /// (task panics), the journal (torn writes, bit flips), and the
    /// connection path (resets, stalls). Disabled by default.
    pub faults: Faults,
    /// Attempts trained per staged Train task (lane-batched when > 1).
    /// Results are bit-identical at any value — a pure throughput knob,
    /// exposed on `/stats` and `/metrics` as `gcln_sched_train_chunk_size`.
    pub train_chunk_size: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 2,
            queue_cap: 16,
            journal: None,
            journal_compact_bytes: Some(4 * 1024 * 1024),
            rate_limit: None,
            max_retained_jobs: 4096,
            max_job_time: Some(Duration::from_secs(600)),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            journal_fsync: FsyncPolicy::Never,
            faults: Faults::disabled(),
            train_chunk_size: 1,
        }
    }
}

/// Job lifecycle states exposed by the API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

/// One learned invariant in API form.
struct InvariantOut {
    loop_id: u64,
    formula: String,
    attempts: u64,
}

/// Mutable job state behind the record's lock.
struct JobState {
    status: JobStatus,
    valid: bool,
    stopped: Option<String>,
    cegis_rounds: u64,
    seconds: f64,
    invariants: Vec<InvariantOut>,
    /// Event lines, each a complete JSON object, in emission order.
    events: Vec<String>,
}

impl JobState {
    /// A freshly admitted job's state.
    fn queued() -> JobState {
        JobState {
            status: JobStatus::Queued,
            valid: false,
            stopped: None,
            cegis_rounds: 0,
            seconds: 0.0,
            invariants: Vec::new(),
            events: Vec::new(),
        }
    }
}

struct JobRecord {
    id: u64,
    name: String,
    source_hash: u64,
    /// Scheduler priority the job was admitted with (rate-limit
    /// headroom; 0 when rate limiting is off or after replay).
    priority: i32,
    /// The `{"type":"admitted"}` journal payload this job was admitted
    /// with — compaction retains it while the job is incomplete, so a
    /// crash after compaction still resubmits the job on restart.
    /// `None` for journal-replayed completed records.
    admit_line: Option<String>,
    cancel: CancelToken,
    state: Mutex<JobState>,
}

impl JobRecord {
    /// The API id (`job-<n>`).
    fn api_id(&self) -> String {
        format!("job-{}", self.id)
    }

    /// The record's fields as the members of a JSON object (no braces)
    /// — shared verbatim by `GET /jobs/{id}` and the journal format.
    fn body_json(&self) -> String {
        let st = self.state.lock().unwrap();
        let stopped = match &st.stopped {
            None => "null".to_string(),
            Some(reason) => json_string(reason),
        };
        let invariants: Vec<String> = st
            .invariants
            .iter()
            .map(|inv| {
                format!(
                    r#"{{"loop":{},"formula":{},"attempts":{}}}"#,
                    inv.loop_id,
                    json_string(&inv.formula),
                    inv.attempts
                )
            })
            .collect();
        format!(
            r#""id":{},"name":{},"source_hash":"{:016x}","status":"{}","priority":{},"valid":{},"stopped":{},"cegis_rounds":{},"seconds":{:.3},"invariants":[{}],"events":[{}]"#,
            json_string(&self.api_id()),
            json_string(&self.name),
            self.source_hash,
            st.status.as_str(),
            self.priority,
            st.valid,
            stopped,
            st.cegis_rounds,
            st.seconds,
            invariants.join(","),
            st.events.join(",")
        )
    }
}

/// Admission state: flips under one lock so a submission either sees
/// shutdown/capacity truthfully or is fully admitted (record inserted
/// and scheduler-submitted) before anyone else can observe it.
struct AdmissionState {
    active: usize,
    shutdown: bool,
}

struct Shared {
    cfg: ServeConfig,
    local_addr: SocketAddr,
    sched: Scheduler,
    spec_cache: SpecCache,
    trace_cache: Arc<TraceCache>,
    limiter: Option<RateLimiter>,
    journal: Option<Journal>,
    /// Serializes journal append + compaction across completions: a
    /// rewrite snapshot and a concurrent append may not interleave, or
    /// the appended record would be erased from disk (records flip to
    /// `Done` *before* this gate, so a rewrite's snapshot always sees
    /// any record whose append preceded the rewrite).
    journal_gate: Mutex<()>,
    journal_rejected: usize,
    /// Records successfully replayed at startup (fixed; `/stats` must
    /// not re-derive this from the evictable jobs map).
    journal_replayed: usize,
    /// Admitted-but-incomplete records resubmitted at startup (fixed).
    journal_resubmitted: usize,
    jobs: Mutex<HashMap<u64, Arc<JobRecord>>>,
    admission: Mutex<AdmissionState>,
    next_id: AtomicU64,
    completed: AtomicU64,
    rate_limited: AtomicU64,
    compactions: AtomicU64,
    admitted: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.admission.lock().unwrap().shutdown
    }

    fn trigger_shutdown(&self) {
        {
            // The flag flips under the admission lock — the same lock
            // job admission checks it under — so a submission either
            // sees shutdown (503) or lands in the jobs map *before* the
            // flag is set, where the cancel sweep below reaches it.
            let mut admission = self.admission.lock().unwrap();
            if admission.shutdown {
                return;
            }
            admission.shutdown = true;
            // Cancel everything queued or running so the scheduler
            // drains promptly; cancelled jobs still complete with
            // partial outcomes and reach the journal.
            for record in self.jobs.lock().unwrap().values() {
                record.cancel.cancel();
            }
        }
        // Wake the acceptor out of its blocking `accept`.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server: the bound address plus the thread handles needed
/// for a clean shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (resolves `port: 0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.shared.local_addr.port()
    }

    /// Triggers shutdown and joins every server thread. Running jobs
    /// are cancelled (they finish as `stopped: cancelled` partial
    /// outcomes and are journaled).
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        self.join();
    }

    /// Blocks until the server shuts down (e.g. via `POST /shutdown`).
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor is down and the admission flag is set, so no new
        // jobs can arrive: draining the scheduler is race-free (every
        // admitted job completes — and is journaled — before this
        // returns).
        self.shared.sched.shutdown();
        let conns: Vec<JoinHandle<()>> =
            self.shared.conn_threads.lock().unwrap().drain(..).collect();
        for conn in conns {
            let _ = conn.join();
        }
    }
}

/// Starts the server: binds, replays the journal (if any), and spawns
/// the scheduler pool and the acceptor thread.
///
/// # Errors
///
/// Returns an I/O error when the bind fails, the journal cannot be
/// opened, or the configuration is degenerate (zero workers/queue).
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    use std::io::{Error, ErrorKind};
    if cfg.workers == 0 || cfg.queue_cap == 0 || cfg.max_retained_jobs == 0 {
        return Err(Error::new(
            ErrorKind::InvalidInput,
            "workers, queue-cap, and max_retained_jobs must be >= 1",
        ));
    }
    let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
    let local_addr = listener.local_addr()?;

    let mut journal = match &cfg.journal {
        Some(path) => {
            let mut j = Journal::open(path)?;
            j.set_fsync(cfg.journal_fsync);
            j.set_faults(cfg.faults.clone());
            Some(j)
        }
        None => None,
    };
    let spec_cache = SpecCache::new();
    let mut jobs = HashMap::new();
    let mut next_id = 1;
    let mut journal_rejected = 0;
    let mut journal_replayed = 0;
    let mut admits: Vec<Json> = Vec::new();
    if let Some(journal) = &mut journal {
        // Drain (not borrow) the parsed records so they drop here —
        // a long journal must not stay resident beyond startup.
        for record in journal.take_replayed() {
            match record.get("type").and_then(Json::as_str) {
                Some("job") => match replay_record(&record) {
                    Some(r) => {
                        journal_replayed += 1;
                        next_id = next_id.max(r.id + 1);
                        jobs.insert(r.id, Arc::new(r));
                    }
                    None => journal_rejected += 1,
                },
                Some("admitted") => admits.push(record),
                _ => journal_rejected += 1,
            }
        }
        evict_completed(&mut jobs, cfg.max_retained_jobs);
    }
    // Admitted-but-incomplete jobs: the server answered 202 (the admit
    // record is durable) but crashed before journaling a completion.
    // Re-derive each submission from its admit record and recompute —
    // inference is deterministic, so the client reads the same result
    // it would have gotten. Unusable admit records count as rejected.
    let mut resubmits = Vec::new();
    let mut resubmit_ids = std::collections::HashSet::new();
    for admit in &admits {
        let Some(p) = parse_admit(admit) else {
            journal_rejected += 1;
            continue;
        };
        if jobs.contains_key(&p.id) || !resubmit_ids.insert(p.id) {
            continue; // completed (or already queued for resubmission)
        }
        match spec_cache.fetch(&p.source, p.name.as_deref()) {
            Ok((source_hash, mut spec)) => {
                spec.apply_overrides(p.max_degree, &[]);
                next_id = next_id.max(p.id + 1);
                resubmits.push((p, source_hash, spec, admit.render()));
            }
            Err(_) => journal_rejected += 1,
        }
    }
    let journal_resubmitted = resubmits.len();

    let trace_cache = Arc::new(TraceCache::new());
    let engine = Engine::new().with_trace_cache(trace_cache.clone());
    let sched_cfg = SchedConfig::with_workers(cfg.workers).with_faults(cfg.faults.clone());
    let sched = Scheduler::with_engine(sched_cfg, engine);
    let shared = Arc::new(Shared {
        sched,
        spec_cache,
        trace_cache,
        limiter: cfg.rate_limit.map(RateLimiter::new),
        journal,
        journal_gate: Mutex::new(()),
        journal_rejected,
        journal_replayed,
        journal_resubmitted,
        jobs: Mutex::new(jobs),
        admission: Mutex::new(AdmissionState { active: journal_resubmitted, shutdown: false }),
        next_id: AtomicU64::new(next_id),
        completed: AtomicU64::new(0),
        rate_limited: AtomicU64::new(0),
        compactions: AtomicU64::new(0),
        admitted: AtomicU64::new(journal_resubmitted as u64),
        conn_threads: Mutex::new(Vec::new()),
        local_addr,
        cfg,
    });

    for (p, source_hash, spec, admit_line) in resubmits {
        let record = Arc::new(JobRecord {
            id: p.id,
            name: spec.problem.name.clone(),
            source_hash,
            priority: p.priority,
            admit_line: Some(admit_line),
            cancel: CancelToken::new(),
            state: Mutex::new(JobState::queued()),
        });
        shared.jobs.lock().unwrap().insert(p.id, record.clone());
        launch_job(&shared, &record, spec, p.fast, p.deadline, p.step_budget);
    }

    let acceptor = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("gcln-serve-accept".to_string())
            .spawn(move || accept_loop(&shared, listener))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle { shared, acceptor: Some(acceptor) })
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        let accepted = listener.accept();
        if shared.is_shutdown() {
            break;
        }
        let stream = match accepted {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Persistent accept errors (fd exhaustion, interrupts)
                // must not busy-spin the acceptor.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let conn_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("gcln-serve-conn".to_string())
            .spawn(move || handle_connection(&conn_shared, stream));
        match spawned {
            Ok(handle) => {
                let mut conns = shared.conn_threads.lock().unwrap();
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            // Thread exhaustion: the failed spawn consumed (and closed)
            // the stream, so this connection is shed — the client sees a
            // reset and retries. What matters is that the acceptor
            // survives: a panic here would drop the listener and wedge
            // the whole process with workers still joined on.
            Err(e) => {
                eprintln!("[gcln-serve] connection thread spawn failed (shedding): {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let faults = &shared.cfg.faults;
    if faults.should_fire(site::SERVE_CONN_RESET) {
        // Injected peer reset: drop the connection unanswered — the
        // client sees a reset mid-exchange and must retry.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    if let Some(roll) = faults.fire(site::SERVE_CONN_STALL) {
        // Injected stall: sit on the accepted connection for a bounded,
        // seed-derived interval before serving it.
        std::thread::sleep(Duration::from_millis(roll % 250));
    }
    // Bounded patience per connection: a stalled peer must not pin the
    // thread (or delay shutdown joins) forever. Zero disables.
    let timeout = |d: Duration| (!d.is_zero()).then_some(d);
    let _ = stream.set_read_timeout(timeout(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(timeout(shared.cfg.write_timeout));
    let peer = stream.peer_addr().ok().map(|a| a.ip());
    let response = match read_request(&mut stream, &shared.cfg.limits) {
        Ok(None) => return,
        Ok(Some(request)) => route(shared, &request, peer),
        Err(e) => Response::from(e),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn route(shared: &Arc<Shared>, request: &Request, peer: Option<IpAddr>) -> Response {
    let path = request.path();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::json(200, r#"{"ok":true}"#),
        ("GET", "/stats") => stats(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/jobs") => post_job(shared, request, peer),
        ("POST", "/shutdown") => {
            shared.trigger_shutdown();
            Response::json(200, r#"{"ok":true,"shutting_down":true}"#)
        }
        (method, path) if path.strip_prefix("/jobs/").is_some() => {
            let id = path.strip_prefix("/jobs/").unwrap_or_default();
            match method {
                "GET" => get_job(shared, id),
                "DELETE" => delete_job(shared, id),
                _ => Response::error(405, "use GET or DELETE on /jobs/{id}")
                    .with_header("allow", "GET, DELETE"),
            }
        }
        (_, "/jobs") => Response::error(405, "use POST on /jobs").with_header("allow", "POST"),
        (_, "/healthz" | "/stats" | "/metrics") => {
            Response::error(405, "use GET here").with_header("allow", "GET")
        }
        (_, "/shutdown") => {
            Response::error(405, "use POST on /shutdown").with_header("allow", "POST")
        }
        _ => Response::error(404, "no such resource"),
    }
}

/// Allowed `POST /jobs` body keys — anything else is a 400 so typos
/// (`"deadline"` for `"deadline_secs"`) fail loudly instead of being
/// silently ignored.
const JOB_KEYS: [&str; 6] = ["source", "name", "fast", "deadline_secs", "step_budget", "max_degree"];

/// Largest accepted `max_degree` override — above the auto-derivation
/// clamp (6) for headroom, but bounded.
const MAX_DEGREE_OVERRIDE: u64 = 8;

fn post_job(shared: &Arc<Shared>, request: &Request, peer: Option<IpAddr>) -> Response {
    if shared.is_shutdown() {
        return Response::error(503, "server is shutting down").with_header("retry-after", "1");
    }
    // Per-client rate limit, before any parsing work: the limiter is
    // the cheap shield in front of the parser, and the remaining
    // allowance becomes the job's scheduler priority.
    let mut priority = 0;
    if let Some(limiter) = &shared.limiter {
        let key = match request.header("x-client-id") {
            Some(id) => id.to_string(),
            None => peer.map_or_else(|| "unknown".to_string(), |ip| ip.to_string()),
        };
        match limiter.admit(&key, Instant::now()) {
            Admission::Granted { priority: p } => priority = p,
            Admission::Rejected { retry_after_secs } => {
                shared.rate_limited.fetch_add(1, Ordering::Relaxed);
                let secs = retry_after_secs.ceil().max(1.0) as u64;
                return Response::error(429, "rate limit exceeded for this client")
                    .with_header("retry-after", &secs.to_string());
            }
        }
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let body = match Json::parse(text) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => return Response::error(400, "body must be a JSON object"),
        Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
    };
    if let Json::Obj(members) = &body {
        for (key, _) in members {
            if !JOB_KEYS.contains(&key.as_str()) {
                return Response::error(
                    400,
                    &format!("unknown key {key:?} (allowed: {})", JOB_KEYS.join(", ")),
                );
            }
        }
    }
    let Some(source) = body.get("source").and_then(Json::as_str) else {
        return Response::error(400, "missing required string field \"source\"");
    };
    let name = match body.get("name") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s) => Some(s),
            None => return Response::error(400, "\"name\" must be a string"),
        },
    };
    let fast = match body.get("fast") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return Response::error(400, "\"fast\" must be a boolean"),
        },
    };
    let deadline = match body.get("deadline_secs") {
        None => None,
        Some(v) => match v.as_f64().filter(|s| s.is_finite() && *s >= 0.0) {
            Some(secs) => match Duration::try_from_secs_f64(secs) {
                Ok(d) => Some(d),
                Err(_) => return Response::error(400, "\"deadline_secs\" out of range"),
            },
            None => {
                return Response::error(400, "\"deadline_secs\" must be a non-negative number")
            }
        },
    };
    let step_budget = match body.get("step_budget") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(steps) => Some(steps),
            None => return Response::error(400, "\"step_budget\" must be a non-negative integer"),
        },
    };
    // Term enumeration explodes combinatorially with degree (the
    // auto-derivation clamp is [2,6]); an unbounded override would let
    // one request pin a worker indefinitely.
    let max_degree = match body.get("max_degree") {
        None => None,
        Some(v) => match v.as_u64().filter(|d| (1..=MAX_DEGREE_OVERRIDE).contains(d)) {
            Some(d) => Some(d as u32),
            None => {
                return Response::error(
                    400,
                    &format!("\"max_degree\" must be an integer in 1..={MAX_DEGREE_OVERRIDE}"),
                )
            }
        },
    };

    let (source_hash, mut spec) = match shared.spec_cache.fetch(source, name) {
        Ok(hit) => hit,
        Err(e) => return Response::error(400, &format!("source does not parse: {e}")),
    };
    spec.apply_overrides(max_degree, &[]);

    // Admission: the lock covers the capacity check and the record
    // insert, so two racing submissions cannot both squeeze past the
    // cap — and a shutdown (which flips the flag under the same lock)
    // always finds the admitted record in the jobs map and cancels its
    // token. The scheduler submit happens *after* the lock is released:
    // a quarantined submission completes synchronously on this thread,
    // re-entering `finish_record`, which takes this lock (and the jobs
    // lock and journal gate) itself.
    let record = {
        let mut admission = shared.admission.lock().unwrap();
        if admission.shutdown {
            return Response::error(503, "server is shutting down")
                .with_header("retry-after", "1");
        }
        if admission.active >= shared.cfg.queue_cap + shared.cfg.workers {
            return Response::error(503, "job queue is full").with_header("retry-after", "1");
        }
        admission.active += 1;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let admit_line =
            admit_json(id, source, name, fast, deadline, step_budget, max_degree, priority);
        let record = Arc::new(JobRecord {
            id,
            name: spec.problem.name.clone(),
            source_hash,
            priority,
            admit_line: Some(admit_line),
            cancel: CancelToken::new(),
            state: Mutex::new(JobState::queued()),
        });
        shared.jobs.lock().unwrap().insert(id, record.clone());
        record
    };

    // Durable admission: the admit record reaches the journal before
    // the 202, so "admitted" means "a restart will recover this job".
    // An append failure rolls the admission back — the client gets a
    // 503 and retries; nothing half-admitted survives.
    if let Some(journal) = &shared.journal {
        let gate = shared.journal_gate.lock().unwrap();
        let appended = journal.append(record.admit_line.as_deref().unwrap_or_default());
        drop(gate);
        if let Err(e) = appended {
            eprintln!("[gcln-serve] admit journal append failed for {}: {e}", record.api_id());
            shared.jobs.lock().unwrap().remove(&record.id);
            shared.admission.lock().unwrap().active -= 1;
            return Response::error(503, "journal append failed; job not admitted")
                .with_header("retry-after", "1");
        }
    }
    shared.admitted.fetch_add(1, Ordering::Relaxed);

    launch_job(shared, &record, spec, fast, deadline, step_budget);
    Response::json(
        202,
        format!(
            r#"{{"id":{},"status":"queued","name":{},"source_hash":"{:016x}","priority":{}}}"#,
            json_string(&record.api_id()),
            json_string(&record.name),
            source_hash,
            priority
        ),
    )
}

/// Builds the engine job for an admitted record and submits it to the
/// scheduler, wiring the event sink and the completion hook. Must be
/// called *without* the admission lock (or any other server lock)
/// held: a quarantined submission completes synchronously on the
/// calling thread, running [`finish_record`] re-entrantly.
fn launch_job(
    shared: &Arc<Shared>,
    record: &Arc<JobRecord>,
    spec: gcln_engine::ProblemSpec,
    fast: bool,
    deadline: Option<Duration>,
    step_budget: Option<u64>,
) {
    let mut config = if fast { PipelineConfig::fast() } else { PipelineConfig::default() };
    config.train_chunk_size = shared.cfg.train_chunk_size.max(1);
    let ext_names = spec.problem.extended_names();
    let mut job = Job::new(spec).with_config(config);
    job.cancel = record.cancel.clone();
    // The server-wide job-time ceiling applies even when the submission
    // asked for no deadline at all.
    let deadline = match (deadline, shared.cfg.max_job_time) {
        (Some(requested), Some(cap)) => Some(requested.min(cap)),
        (None, cap) => cap,
        (requested, None) => requested,
    };
    if let Some(deadline) = deadline {
        job = job.with_deadline(deadline);
    }
    if let Some(steps) = step_budget {
        job = job.with_step_budget(steps);
    }
    let sink_record = record.clone();
    let done_shared = shared.clone();
    let done_record = record.clone();
    shared.sched.submit_with(
        job,
        SubmitOptions {
            priority: record.priority,
            granularity: Granularity::Stage,
            // Keyed by source hash: repeated panics on the same spec
            // trip the scheduler's circuit breaker, and later
            // submissions of that spec fail fast as `quarantined`.
            fault_key: Some(record.source_hash),
        },
        Some(Box::new(move |ev: &JobEvent| {
            let mut st = sink_record.state.lock().unwrap();
            if matches!(ev.event, Event::JobStarted { .. }) {
                st.status = JobStatus::Running;
            }
            st.events.push(ev.event.to_json());
        })),
        Some(Box::new(move |outcome, _stats| {
            finish_record(&done_shared, &done_record, outcome, &ext_names);
        })),
    );
}

/// Renders the `{"type":"admitted"}` journal payload for a submission —
/// everything needed to re-derive and resubmit the job after a crash.
#[allow(clippy::too_many_arguments)]
fn admit_json(
    id: u64,
    source: &str,
    name: Option<&str>,
    fast: bool,
    deadline: Option<Duration>,
    step_budget: Option<u64>,
    max_degree: Option<u32>,
    priority: i32,
) -> String {
    format!(
        r#"{{"type":"admitted","id":{},"source":{},"name":{},"fast":{},"deadline_secs":{},"step_budget":{},"max_degree":{},"priority":{}}}"#,
        json_string(&format!("job-{id}")),
        json_string(source),
        name.map_or_else(|| "null".to_string(), json_string),
        fast,
        deadline.map_or_else(|| "null".to_string(), |d| format!("{}", d.as_secs_f64())),
        step_budget.map_or_else(|| "null".to_string(), |s| s.to_string()),
        max_degree.map_or_else(|| "null".to_string(), |d| d.to_string()),
        priority,
    )
}

/// The submission parameters recovered from one admit record.
struct AdmitParams {
    id: u64,
    source: String,
    name: Option<String>,
    fast: bool,
    deadline: Option<Duration>,
    step_budget: Option<u64>,
    max_degree: Option<u32>,
    priority: i32,
}

/// Parses an admit record; `None` rejects records missing the id or
/// source (nothing to resubmit without them).
fn parse_admit(v: &Json) -> Option<AdmitParams> {
    Some(AdmitParams {
        id: parse_job_id(v.get("id")?.as_str()?)?,
        source: v.get("source")?.as_str()?.to_string(),
        name: v
            .get("name")
            .filter(|n| !n.is_null())
            .and_then(Json::as_str)
            .map(str::to_string),
        fast: v.get("fast").and_then(Json::as_bool).unwrap_or(false),
        deadline: v
            .get("deadline_secs")
            .filter(|d| !d.is_null())
            .and_then(Json::as_f64)
            .and_then(|s| Duration::try_from_secs_f64(s).ok()),
        step_budget: v.get("step_budget").filter(|s| !s.is_null()).and_then(Json::as_u64),
        max_degree: v
            .get("max_degree")
            .filter(|d| !d.is_null())
            .and_then(Json::as_u64)
            .map(|d| d as u32),
        priority: v.get("priority").and_then(Json::as_f64).map_or(0, |p| p as i32),
    })
}

/// Completion hook, invoked by the scheduler worker that finished the
/// job: publishes the outcome on the record, journals it, and applies
/// retention (in-memory eviction + on-disk compaction).
fn finish_record(
    shared: &Arc<Shared>,
    record: &Arc<JobRecord>,
    outcome: &gcln_engine::InferenceOutcome,
    ext_names: &[String],
) {
    {
        let mut st = record.state.lock().unwrap();
        st.status = JobStatus::Done;
        st.valid = outcome.valid;
        st.stopped = outcome.stopped.map(|r| r.as_str().to_string());
        st.cegis_rounds = outcome.cegis_rounds_used as u64;
        st.seconds = outcome.runtime.as_secs_f64();
        st.invariants = outcome
            .loops
            .iter()
            .map(|li| InvariantOut {
                loop_id: li.loop_id as u64,
                formula: li.formula.display(ext_names).to_string(),
                attempts: li.attempts as u64,
            })
            .collect();
    }
    {
        let mut jobs = shared.jobs.lock().unwrap();
        evict_completed(&mut jobs, shared.cfg.max_retained_jobs);
    }
    if let Some(journal) = &shared.journal {
        // The gate serializes append + compaction across completions
        // (never endpoint reads): without it, a rewrite built from a
        // snapshot taken before a neighbor's append would erase that
        // neighbor's record from disk. The jobs lock is only held for
        // the snapshot; serializing ~max_retained records and fsyncing
        // the rewrite happen outside it.
        let _gate = shared.journal_gate.lock().unwrap();
        let line = format!(r#"{{"type":"job",{}}}"#, record.body_json());
        if let Err(e) = journal.append(&line) {
            eprintln!("[gcln-serve] journal append failed for {}: {e}", record.api_id());
        }
        let compact: Option<Vec<Arc<JobRecord>>> = match shared.cfg.journal_compact_bytes {
            Some(threshold) if journal.size_bytes() > threshold => {
                let jobs = shared.jobs.lock().unwrap();
                let mut all: Vec<Arc<JobRecord>> = jobs.values().cloned().collect();
                all.sort_unstable_by_key(|r| r.id);
                Some(all)
            }
            _ => None,
        };
        if let Some(records) = compact {
            // Done jobs keep their result line; incomplete jobs keep
            // their admit line, so a crash after this rewrite still
            // resubmits them on restart.
            let lines: Vec<String> = records
                .iter()
                .filter_map(|r| {
                    if r.state.lock().unwrap().status == JobStatus::Done {
                        Some(format!(r#"{{"type":"job",{}}}"#, r.body_json()))
                    } else {
                        r.admit_line.clone()
                    }
                })
                .collect();
            match journal.rewrite(&lines) {
                Ok(()) => {
                    shared.compactions.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => eprintln!("[gcln-serve] journal compaction failed: {e}"),
            }
        }
    }
    shared.completed.fetch_add(1, Ordering::Relaxed);
    shared.admission.lock().unwrap().active -= 1;
}

/// Parses `job-<n>` into the numeric id.
fn parse_job_id(id: &str) -> Option<u64> {
    id.strip_prefix("job-")?.parse().ok()
}

fn lookup(shared: &Arc<Shared>, id: &str) -> Option<Arc<JobRecord>> {
    let id = parse_job_id(id)?;
    shared.jobs.lock().unwrap().get(&id).cloned()
}

fn get_job(shared: &Arc<Shared>, id: &str) -> Response {
    match lookup(shared, id) {
        Some(record) => Response::json(200, format!("{{{}}}", record.body_json())),
        None => Response::error(404, "no such job"),
    }
}

fn delete_job(shared: &Arc<Shared>, id: &str) -> Response {
    match lookup(shared, id) {
        Some(record) => {
            record.cancel.cancel();
            let status = record.state.lock().unwrap().status;
            Response::json(
                200,
                format!(
                    r#"{{"id":{},"status":"{}","cancelled":true}}"#,
                    json_string(&record.api_id()),
                    status.as_str()
                ),
            )
        }
        None => Response::error(404, "no such job"),
    }
}

fn stats(shared: &Arc<Shared>) -> Response {
    let active = shared.admission.lock().unwrap().active;
    // The scheduler interleaves jobs rather than pinning them to
    // workers, so the legacy queue/busy figures are derived: jobs
    // beyond the pool width are "queued", the rest keep workers busy.
    let queue_depth = active.saturating_sub(shared.cfg.workers);
    let busy_workers = active.min(shared.cfg.workers);
    let (mut queued, mut running, mut done) = (0u64, 0u64, 0u64);
    let total = {
        let jobs = shared.jobs.lock().unwrap();
        for record in jobs.values() {
            match record.state.lock().unwrap().status {
                JobStatus::Queued => queued += 1,
                JobStatus::Running => running += 1,
                JobStatus::Done => done += 1,
            }
        }
        jobs.len()
    };
    let cache_json = |s: gcln_engine::cache::CacheStats| {
        format!(r#"{{"hits":{},"misses":{},"entries":{}}}"#, s.hits, s.misses, s.entries)
    };
    let journal = match &shared.journal {
        None => "null".to_string(),
        Some(j) => format!(
            r#"{{"path":{},"jobs_replayed":{},"jobs_resubmitted":{},"lines_skipped":{},"repaired":{},"size_bytes":{},"compactions":{}}}"#,
            json_string(&j.path().display().to_string()),
            shared.journal_replayed,
            shared.journal_resubmitted,
            j.skipped_lines() + shared.journal_rejected,
            j.recovery().repaired,
            j.size_bytes(),
            shared.compactions.load(Ordering::Relaxed)
        ),
    };
    let sched = shared.sched.metrics();
    Response::json(
        200,
        format!(
            r#"{{"queue_depth":{},"queue_cap":{},"workers":{},"train_chunk_size":{},"busy_workers":{},"jobs":{{"total":{},"queued":{},"running":{},"done":{},"completed_this_process":{}}},"scheduler":{{"active_jobs":{},"tasks_executed":{},"tasks_retried":{},"tasks_panicked":{},"jobs_quarantined":{},"utilization":{:.3}}},"rate_limited":{},"spec_cache":{},"trace_cache":{},"journal":{}}}"#,
            queue_depth,
            shared.cfg.queue_cap,
            shared.cfg.workers,
            shared.cfg.train_chunk_size,
            busy_workers,
            total,
            queued,
            running,
            done,
            shared.completed.load(Ordering::Relaxed),
            shared.sched.active_jobs(),
            sched.tasks_executed,
            sched.tasks_retried,
            sched.tasks_panicked,
            sched.jobs_quarantined,
            sched.utilization(),
            shared.rate_limited.load(Ordering::Relaxed),
            cache_json(shared.spec_cache.stats()),
            cache_json(shared.trace_cache.stats()),
            journal
        ),
    )
}

/// `GET /metrics`: Prometheus text exposition (see [`crate::metrics`]).
fn metrics(shared: &Arc<Shared>) -> Response {
    let text = crate::metrics::render(
        &shared.sched.metrics(),
        shared.spec_cache.stats(),
        shared.trace_cache.stats(),
        crate::metrics::ServeCounters {
            train_chunk_size: shared.cfg.train_chunk_size as u64,
            rate_limited: shared.rate_limited.load(Ordering::Relaxed),
            journal_compactions: shared.compactions.load(Ordering::Relaxed),
            jobs_admitted: shared.admitted.load(Ordering::Relaxed),
            journal_skipped_lines: shared
                .journal
                .as_ref()
                .map_or(0, |j| (j.skipped_lines() + shared.journal_rejected) as u64),
            journal_resubmitted: shared.journal_resubmitted as u64,
        },
    );
    Response::text(200, text)
}

/// Drops the oldest completed records beyond `max_retained` — each
/// retains its full event stream, so an unbounded map would grow with
/// total submissions forever. Queued/running jobs are never evicted.
fn evict_completed(jobs: &mut HashMap<u64, Arc<JobRecord>>, max_retained: usize) {
    let mut done: Vec<u64> = jobs
        .iter()
        .filter(|(_, r)| r.state.lock().unwrap().status == JobStatus::Done)
        .map(|(&id, _)| id)
        .collect();
    let excess = done.len().saturating_sub(max_retained);
    if excess == 0 {
        return;
    }
    done.sort_unstable();
    for id in done.into_iter().take(excess) {
        jobs.remove(&id);
    }
}

/// Rebuilds a completed job record from one journal object; `None`
/// rejects structurally unusable records (missing id/status).
fn replay_record(v: &Json) -> Option<JobRecord> {
    let id = parse_job_id(v.get("id")?.as_str()?)?;
    let status = v.get("status")?.as_str()?;
    if status != "done" {
        return None;
    }
    let invariants = v
        .get("invariants")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|inv| {
            Some(InvariantOut {
                loop_id: inv.get("loop")?.as_u64()?,
                formula: inv.get("formula")?.as_str()?.to_string(),
                attempts: inv.get("attempts")?.as_u64()?,
            })
        })
        .collect();
    let events = v
        .get("events")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(Json::render)
        .collect();
    Some(JobRecord {
        id,
        name: v.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
        source_hash: v
            .get("source_hash")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or(0),
        priority: v.get("priority").and_then(Json::as_f64).map_or(0, |p| p as i32),
        admit_line: None,
        cancel: CancelToken::new(),
        state: Mutex::new(JobState {
            status: JobStatus::Done,
            valid: v.get("valid").and_then(Json::as_bool).unwrap_or(false),
            stopped: v
                .get("stopped")
                .filter(|s| !s.is_null())
                .and_then(Json::as_str)
                .map(str::to_string),
            cegis_rounds: v.get("cegis_rounds").and_then(Json::as_u64).unwrap_or(0),
            seconds: v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
            invariants,
            events,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_records_roundtrip() {
        let line = admit_json(
            7,
            "inputs n; while (i < n) { i = i + 1; }",
            Some("count"),
            true,
            Some(Duration::from_secs_f64(2.5)),
            Some(3),
            Some(4),
            -2,
        );
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("admitted"));
        let p = parse_admit(&v).unwrap();
        assert_eq!(p.id, 7);
        assert_eq!(p.name.as_deref(), Some("count"));
        assert!(p.fast);
        assert_eq!(p.deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(p.step_budget, Some(3));
        assert_eq!(p.max_degree, Some(4));
        assert_eq!(p.priority, -2);
        // Null optionals survive the roundtrip as None.
        let line = admit_json(8, "x", None, false, None, None, None, 0);
        let p = parse_admit(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(p.name, None);
        assert_eq!(p.deadline, None);
        assert_eq!(p.step_budget, None);
        assert_eq!(p.max_degree, None);
        // Structurally unusable records are rejected.
        assert!(parse_admit(&Json::parse(r#"{"type":"admitted","id":"job-1"}"#).unwrap())
            .is_none());
        assert!(parse_admit(&Json::parse(r#"{"type":"admitted","source":"x"}"#).unwrap())
            .is_none());
    }

    #[test]
    fn job_ids_parse_strictly() {
        assert_eq!(parse_job_id("job-12"), Some(12));
        assert_eq!(parse_job_id("job-"), None);
        assert_eq!(parse_job_id("12"), None);
        assert_eq!(parse_job_id("job-x"), None);
    }

    #[test]
    fn replay_rejects_unusable_records() {
        let good = Json::parse(
            r#"{"type":"job","id":"job-4","status":"done","valid":true,
                "invariants":[{"loop":0,"formula":"x == 0","attempts":2}],
                "events":[{"event":"job_finished","valid":true,"cegis_rounds":0,"ms":1.0}]}"#,
        )
        .unwrap();
        let record = replay_record(&good).unwrap();
        assert_eq!(record.id, 4);
        let st = record.state.lock().unwrap();
        assert!(st.valid);
        assert_eq!(st.invariants.len(), 1);
        assert_eq!(st.events.len(), 1);
        drop(st);
        for bad in [
            r#"{"type":"job","status":"done"}"#,
            r#"{"type":"job","id":"job-1"}"#,
            r#"{"type":"job","id":"nope","status":"done"}"#,
        ] {
            assert!(replay_record(&Json::parse(bad).unwrap()).is_none(), "{bad}");
        }
    }

    #[test]
    fn eviction_drops_oldest_done_only() {
        let record = |id: u64, status: JobStatus| {
            Arc::new(JobRecord {
                id,
                name: "x".into(),
                source_hash: 0,
                priority: 0,
                admit_line: None,
                cancel: CancelToken::new(),
                state: Mutex::new(JobState {
                    status,
                    valid: false,
                    stopped: None,
                    cegis_rounds: 0,
                    seconds: 0.0,
                    invariants: Vec::new(),
                    events: Vec::new(),
                }),
            })
        };
        let mut jobs = HashMap::new();
        jobs.insert(1, record(1, JobStatus::Done));
        jobs.insert(2, record(2, JobStatus::Queued));
        jobs.insert(3, record(3, JobStatus::Done));
        jobs.insert(4, record(4, JobStatus::Running));
        jobs.insert(5, record(5, JobStatus::Done));
        evict_completed(&mut jobs, 2);
        // Oldest done (id 1) evicted; queued/running untouched.
        let mut ids: Vec<u64> = jobs.keys().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3, 4, 5]);
        evict_completed(&mut jobs, 2);
        assert_eq!(jobs.len(), 4, "at cap: nothing more to evict");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let cfg = ServeConfig { workers: 0, ..ServeConfig::default() };
        assert!(start(cfg).is_err());
        let cfg = ServeConfig { queue_cap: 0, ..ServeConfig::default() };
        assert!(start(cfg).is_err());
    }
}
