//! A minimal blocking HTTP client for the `gcln-serve` API — enough
//! for the test suite, smoke scripts, and driving suites through the
//! HTTP front end from Rust (see EXPERIMENTS.md).
//!
//! One request per connection (the server speaks `Connection: close`),
//! so a "client" is just a function.

use crate::json::{Json, JsonError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status, lower-cased headers, body text.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body as text.
    pub body: String,
}

impl ClientResponse {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the body is not well-formed JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        Json::parse(&self.body)
    }
}

/// Performs one request against a server. `body`, when present, is sent
/// with a `Content-Length` (the API takes JSON bodies only).
///
/// # Errors
///
/// Returns an I/O error on connection failure, timeout (30 s), or a
/// malformed response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    request_with_headers(addr, method, path, &[], body)
}

/// [`request`] with extra request headers (e.g. `x-client-id` for the
/// per-client rate limiter).
///
/// # Errors
///
/// Same as [`request`].
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    use std::io::{Error, ErrorKind};
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let body_bytes = body.unwrap_or("").as_bytes();
    let extra: String =
        headers.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\n{extra}content-length: {}\r\n\r\n",
        body_bytes.len()
    )?;
    stream.write_all(body_bytes)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| Error::new(ErrorKind::InvalidData, "response is not UTF-8"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "response has no head/body split"))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse { status, headers, body: payload.to_string() })
}
