//! `GET /metrics`: Prometheus text exposition (format 0.0.4) over the
//! scheduler's task timings plus the server's own counters.
//!
//! Series:
//!
//! - `gcln_sched_task_duration_seconds{kind=…}` — histogram of task
//!   execution latency per stage kind (trace/setup/train/extract/
//!   kernel/bounds/fractional/check, plus `whole` for job-granularity
//!   runs).
//! - `gcln_sched_queue_wait_seconds` — histogram of ready-queue wait.
//! - `gcln_sched_worker_utilization` — gauge, busy ÷ (uptime × workers).
//! - `gcln_sched_workers`, `gcln_sched_jobs_total{state=…}`,
//!   `gcln_sched_tasks_executed_total` — pool shape and volume.
//! - `gcln_sched_task_retries_total`, `gcln_sched_task_panics_total`,
//!   `gcln_sched_jobs_quarantined_total` — fault-tolerance volume:
//!   transient faults retried, permanent task panics, and jobs failed
//!   fast by the circuit breaker.
//! - `gcln_serve_cache_requests_total{cache=…,result=…}` and
//!   `gcln_serve_cache_entries{cache=…}` — spec/trace cache hit ratios.
//! - `gcln_serve_jobs_admitted_total`, `gcln_serve_rate_limited_total`,
//!   `gcln_serve_journal_compactions_total` — service counters.
//! - `gcln_serve_journal_skipped_lines_total`,
//!   `gcln_serve_journal_resubmitted_total` — journal recovery: corrupt
//!   records dropped at open, and admitted-but-incomplete jobs
//!   resubmitted after a restart.

use gcln_engine::cache::CacheStats;
use gcln_sched::metrics::{HistogramSnapshot, MetricsSnapshot, BUCKET_BOUNDS};
use std::fmt::Write;

/// Server-side counter values rendered next to the scheduler snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeCounters {
    /// Attempts trained per staged Train task (the server's configured
    /// `train_chunk_size`; results are chunk-size-invariant).
    pub train_chunk_size: u64,
    /// `POST /jobs` requests rejected with 429.
    pub rate_limited: u64,
    /// Journal rewrite passes performed.
    pub journal_compactions: u64,
    /// Jobs admitted by this process.
    pub jobs_admitted: u64,
    /// Corrupt journal records dropped at open (torn tails, checksum
    /// mismatches, unparseable payloads).
    pub journal_skipped_lines: u64,
    /// Admitted-but-incomplete journal records resubmitted at startup.
    pub journal_resubmitted: u64,
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let cumulative = h.cumulative();
    for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
        let count = cumulative.get(i).copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {count}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{{{labels}}} {:.6}", h.sum);
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
}

/// Renders the full exposition document.
pub fn render(
    sched: &MetricsSnapshot,
    spec_cache: CacheStats,
    trace_cache: CacheStats,
    counters: ServeCounters,
) -> String {
    let mut out = String::with_capacity(4096);
    let o = &mut out;

    let _ = writeln!(o, "# HELP gcln_sched_task_duration_seconds Task execution latency by stage kind.");
    let _ = writeln!(o, "# TYPE gcln_sched_task_duration_seconds histogram");
    for (kind, histogram) in &sched.tasks {
        render_histogram(
            o,
            "gcln_sched_task_duration_seconds",
            &format!("kind=\"{kind}\""),
            histogram,
        );
    }

    let _ = writeln!(o, "# HELP gcln_sched_queue_wait_seconds Ready-queue wait before a worker picked a task.");
    let _ = writeln!(o, "# TYPE gcln_sched_queue_wait_seconds histogram");
    render_histogram(o, "gcln_sched_queue_wait_seconds", "", &sched.queue_wait);

    let _ = writeln!(o, "# HELP gcln_sched_worker_utilization Busy fraction of the worker pool since start.");
    let _ = writeln!(o, "# TYPE gcln_sched_worker_utilization gauge");
    let _ = writeln!(o, "gcln_sched_worker_utilization {:.6}", sched.utilization());
    let _ = writeln!(o, "# TYPE gcln_sched_workers gauge");
    let _ = writeln!(o, "gcln_sched_workers {}", sched.workers);
    let _ = writeln!(o, "# HELP gcln_sched_train_chunk_size Attempts trained per Train task (lane-batched when > 1; results are chunk-size-invariant).");
    let _ = writeln!(o, "# TYPE gcln_sched_train_chunk_size gauge");
    let _ = writeln!(o, "gcln_sched_train_chunk_size {}", counters.train_chunk_size.max(1));
    let _ = writeln!(o, "# TYPE gcln_sched_uptime_seconds gauge");
    let _ = writeln!(o, "gcln_sched_uptime_seconds {:.3}", sched.uptime.as_secs_f64());

    let _ = writeln!(o, "# TYPE gcln_sched_jobs_total counter");
    let _ = writeln!(o, "gcln_sched_jobs_total{{state=\"submitted\"}} {}", sched.jobs_submitted);
    let _ = writeln!(o, "gcln_sched_jobs_total{{state=\"completed\"}} {}", sched.jobs_completed);
    let _ = writeln!(o, "# TYPE gcln_sched_tasks_executed_total counter");
    let _ = writeln!(o, "gcln_sched_tasks_executed_total {}", sched.tasks_executed);
    let _ = writeln!(o, "# HELP gcln_sched_task_retries_total Stage tasks re-enqueued after a transient fault.");
    let _ = writeln!(o, "# TYPE gcln_sched_task_retries_total counter");
    let _ = writeln!(o, "gcln_sched_task_retries_total {}", sched.tasks_retried);
    let _ = writeln!(o, "# HELP gcln_sched_task_panics_total Stage tasks that failed their job permanently by panicking.");
    let _ = writeln!(o, "# TYPE gcln_sched_task_panics_total counter");
    let _ = writeln!(o, "gcln_sched_task_panics_total {}", sched.tasks_panicked);
    let _ = writeln!(o, "# HELP gcln_sched_jobs_quarantined_total Jobs failed fast by the spec-hash circuit breaker.");
    let _ = writeln!(o, "# TYPE gcln_sched_jobs_quarantined_total counter");
    let _ = writeln!(o, "gcln_sched_jobs_quarantined_total {}", sched.jobs_quarantined);

    let _ = writeln!(o, "# HELP gcln_serve_cache_requests_total Spec/trace cache lookups by result.");
    let _ = writeln!(o, "# TYPE gcln_serve_cache_requests_total counter");
    let _ = writeln!(o, "# TYPE gcln_serve_cache_entries gauge");
    for (label, stats) in [("spec", spec_cache), ("trace", trace_cache)] {
        let _ = writeln!(
            o,
            "gcln_serve_cache_requests_total{{cache=\"{label}\",result=\"hit\"}} {}",
            stats.hits
        );
        let _ = writeln!(
            o,
            "gcln_serve_cache_requests_total{{cache=\"{label}\",result=\"miss\"}} {}",
            stats.misses
        );
        let _ = writeln!(o, "gcln_serve_cache_entries{{cache=\"{label}\"}} {}", stats.entries);
    }

    let _ = writeln!(o, "# TYPE gcln_serve_jobs_admitted_total counter");
    let _ = writeln!(o, "gcln_serve_jobs_admitted_total {}", counters.jobs_admitted);
    let _ = writeln!(o, "# TYPE gcln_serve_rate_limited_total counter");
    let _ = writeln!(o, "gcln_serve_rate_limited_total {}", counters.rate_limited);
    let _ = writeln!(o, "# TYPE gcln_serve_journal_compactions_total counter");
    let _ = writeln!(o, "gcln_serve_journal_compactions_total {}", counters.journal_compactions);
    let _ = writeln!(o, "# TYPE gcln_serve_journal_skipped_lines_total counter");
    let _ = writeln!(o, "gcln_serve_journal_skipped_lines_total {}", counters.journal_skipped_lines);
    let _ = writeln!(o, "# TYPE gcln_serve_journal_resubmitted_total counter");
    let _ = writeln!(o, "gcln_serve_journal_resubmitted_total {}", counters.journal_resubmitted);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_sched::{SchedConfig, Scheduler};

    #[test]
    fn exposition_is_well_formed() {
        let sched = Scheduler::new(SchedConfig::with_workers(1));
        let snapshot = sched.metrics();
        sched.shutdown();
        let text = render(
            &snapshot,
            CacheStats { hits: 3, misses: 1, entries: 1 },
            CacheStats { hits: 0, misses: 2, entries: 2 },
            ServeCounters {
                train_chunk_size: 4,
                rate_limited: 5,
                journal_compactions: 1,
                jobs_admitted: 9,
                journal_skipped_lines: 2,
                journal_resubmitted: 1,
            },
        );
        // Histogram invariants: a +Inf bucket per histogram, sum/count
        // lines, and every sample line is `name{labels} value`.
        assert!(text.contains("gcln_sched_queue_wait_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("gcln_sched_worker_utilization "));
        assert!(text.contains("gcln_serve_cache_requests_total{cache=\"spec\",result=\"hit\"} 3"));
        assert!(text.contains("gcln_sched_train_chunk_size 4"));
        assert!(text.contains("gcln_serve_rate_limited_total 5"));
        assert!(text.contains("gcln_serve_journal_compactions_total 1"));
        assert!(text.contains("gcln_sched_task_retries_total 0"));
        assert!(text.contains("gcln_sched_task_panics_total 0"));
        assert!(text.contains("gcln_sched_jobs_quarantined_total 0"));
        assert!(text.contains("gcln_serve_journal_skipped_lines_total 2"));
        assert!(text.contains("gcln_serve_journal_resubmitted_total 1"));
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line}");
        }
    }
}
