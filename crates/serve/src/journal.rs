//! The persistent job journal: one JSON object per line, appended when
//! a job completes, replayed on server start.
//!
//! This is the ROADMAP's "event sinks beyond stdout" item for the
//! service scenario: a `gcln serve --journal jobs.jsonl` process can be
//! restarted and keep serving every completed job's result — learned
//! invariants *and* the full event stream — without re-running
//! inference.
//!
//! Format: each line is a `{"type":"job", …}` object exactly matching
//! the `GET /jobs/{id}` response schema (see the crate docs), plus the
//! `type` tag. Lines that fail to parse (e.g. a torn final line after a
//! crash) are skipped and counted, never fatal.

use crate::json::Json;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The result of opening a journal: replayed records plus the handle
/// for appending.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    replayed: Vec<Json>,
    skipped_lines: usize,
}

impl Journal {
    /// Opens (creating if absent) a journal for append, first replaying
    /// every well-formed `{"type":"job"}` line already present.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened
    /// or created.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut replayed = Vec::new();
        let mut skipped_lines = 0;
        if let Ok(existing) = File::open(&path) {
            // Raw byte lines, decoded lossily per line: a crash can tear
            // the final line anywhere — including inside a multi-byte
            // UTF-8 sequence — and replay must skip it, not refuse to
            // start the server. (Genuine I/O errors stay fatal: an
            // unreadable disk is not a torn line.)
            let mut reader = BufReader::new(existing);
            let mut buf = Vec::new();
            loop {
                buf.clear();
                if reader.read_until(b'\n', &mut buf)? == 0 {
                    break;
                }
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match Json::parse(line) {
                    Ok(v) if v.get("type").and_then(Json::as_str) == Some("job") => {
                        replayed.push(v)
                    }
                    _ => skipped_lines += 1,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file: Mutex::new(file), replayed, skipped_lines })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records replayed at open, in file order.
    pub fn replayed(&self) -> &[Json] {
        &self.replayed
    }

    /// Takes ownership of the replayed records, leaving the journal
    /// empty-handed. The server calls this once at startup so the
    /// parsed records (each carrying a full event stream) drop after
    /// conversion instead of living in memory for the process lifetime.
    pub fn take_replayed(&mut self) -> Vec<Json> {
        std::mem::take(&mut self.replayed)
    }

    /// Malformed lines skipped at open.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Appends one record line (the caller passes a complete JSON
    /// object without trailing newline) and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed write.
    pub fn append(&self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal records must be single lines");
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }

    /// Current on-disk size in bytes (compaction trigger input).
    pub fn size_bytes(&self) -> u64 {
        self.file.lock().unwrap().metadata().map_or(0, |m| m.len())
    }

    /// Compaction: atomically replaces the journal's contents with
    /// exactly `lines` (a temp file is written and renamed over the
    /// original, so a crash mid-compaction leaves either the old or the
    /// new journal, never a torn mix). A long-lived server calls this
    /// when the append-only file outgrows its retention window — every
    /// evicted job's line would otherwise live on disk forever.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the original journal is intact
    /// in that case.
    pub fn rewrite(&self, lines: &[String]) -> std::io::Result<()> {
        // Hold the append lock across the whole swap so a concurrent
        // `append` cannot write to the orphaned pre-rename file.
        let mut file = self.file.lock().unwrap();
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut out = File::create(&tmp)?;
            for line in lines {
                debug_assert!(!line.contains('\n'));
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.flush()?;
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        *file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gcln-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrips_records_and_skips_torn_lines() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            assert!(j.replayed().is_empty());
            j.append(r#"{"type":"job","id":"job-1","valid":true}"#).unwrap();
            j.append(r#"{"type":"job","id":"job-2","valid":false}"#).unwrap();
        }
        // Simulate a crash mid-append: a torn trailing line, cut inside
        // a multi-byte UTF-8 sequence (the first byte of `é`) — replay
        // must skip it, not refuse to open.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"type\":\"job\",\"id\":\"job-3\",\"name\":\"caf\xc3").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 2);
        assert_eq!(j.skipped_lines(), 1);
        assert_eq!(
            j.replayed()[1].get("id").and_then(Json::as_str),
            Some("job-2")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_contents_atomically_and_appends_continue() {
        let path = tmp("rewrite.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        for i in 0..10 {
            j.append(&format!(r#"{{"type":"job","id":"job-{i}"}}"#)).unwrap();
        }
        let before = j.size_bytes();
        assert!(before > 0);
        j.rewrite(&[r#"{"type":"job","id":"job-8"}"#.into(), r#"{"type":"job","id":"job-9"}"#.into()])
            .unwrap();
        assert!(j.size_bytes() < before, "compaction must shrink the file");
        // Appends after a rewrite land in the *new* file.
        j.append(r#"{"type":"job","id":"job-10"}"#).unwrap();
        let reopened = Journal::open(&path).unwrap();
        let ids: Vec<&str> = reopened
            .replayed()
            .iter()
            .filter_map(|v| v.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, ["job-8", "job-9", "job-10"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_job_records_are_ignored() {
        let path = tmp("foreign.jsonl");
        std::fs::write(&path, "{\"type\":\"metrics\",\"x\":1}\n{\"type\":\"job\",\"id\":\"job-9\"}\n").unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 1);
        assert_eq!(j.skipped_lines(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
