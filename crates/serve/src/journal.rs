//! The persistent job journal: crash-safe framed records, appended as
//! jobs are admitted and completed, replayed on server start.
//!
//! This is the ROADMAP's "event sinks beyond stdout" item for the
//! service scenario: a `gcln serve --journal jobs.jsonl` process can be
//! restarted and keep serving every completed job's result — learned
//! invariants *and* the full event stream — without re-running
//! inference.
//!
//! # Format (v2)
//!
//! Each record is one line, framed as
//!
//! ```text
//! J2 <payload-len> <crc32-hex8> <payload>\n
//! ```
//!
//! where the payload is a JSON object with a `"type"` tag, exactly as
//! in the v1 format. The length and CRC-32 (IEEE) let recovery detect
//! torn writes (a crash mid-append) and silent corruption (bit rot):
//! a frame whose payload length or checksum does not match is dropped,
//! never replayed as a half-truth. Keeping the payload as plain JSON on
//! its own line means `grep`-based tooling keeps working unchanged.
//!
//! # Recovery
//!
//! Replay is never fatal on corrupt data (genuine I/O errors stay
//! fatal — an unreadable disk is not a torn line):
//!
//! - A chunk that fails frame validation is rescanned for an embedded
//!   `J2 ` magic: a torn write leaves a partial frame with no trailing
//!   newline, so the *next* record glues onto the garbage. The scan
//!   resynchronizes at the first position that yields a valid frame.
//! - Bare JSON lines (the legacy v1 format) are accepted as-is, so old
//!   journals replay without migration.
//! - When anything was skipped, resynced, or read in legacy form, the
//!   journal is rewritten at open — corrupt tails are truncated and
//!   every surviving record is re-framed as v2, atomically (temp file
//!   + rename).
//!
//! # Durability
//!
//! [`FsyncPolicy`] selects whether `append` runs `fsync` per record
//! (`Always`) or leaves flushing to the OS (`Never`, the default —
//! a kernel crash can then lose the tail, but recovery still truncates
//! cleanly to the valid prefix).
//!
//! # Fault injection
//!
//! When built with an active [`Faults`] plan, `append` honours two
//! sites: `journal.torn_write` (writes a prefix of the frame, then
//! fails — models a crash mid-write; the caller sees the error and must
//! not consider the record durable) and `journal.bit_flip` (flips one
//! payload bit, then reports success — models silent corruption caught
//! only by the CRC at recovery).

use crate::json::Json;
use gcln_faults::{site, Faults};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// When `append` forces records to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an admitted job survives
    /// even a kernel crash, at a per-request latency cost.
    Always,
    /// Flush to the OS only (default): a process crash loses nothing,
    /// a kernel crash may lose the unsynced tail — which recovery then
    /// truncates to the last valid record.
    #[default]
    Never,
}

/// Frame magic for v2 records.
const MAGIC: &str = "J2 ";

/// CRC-32 (IEEE 802.3, reflected). Bitwise — journal records are small
/// and this keeps the crate dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn encode_frame(payload: &str) -> String {
    format!("{MAGIC}{} {:08x} {payload}", payload.len(), crc32(payload.as_bytes()))
}

/// Validates one v2 frame starting at the beginning of `chunk`,
/// returning the payload. `None` on any mismatch (bad magic, bad
/// length, bad checksum).
fn decode_frame(chunk: &str) -> Option<&str> {
    let rest = chunk.strip_prefix(MAGIC)?;
    let (len_s, rest) = rest.split_once(' ')?;
    let len: usize = len_s.parse().ok()?;
    let (crc_s, payload) = rest.split_once(' ')?;
    if crc_s.len() != 8 {
        return None;
    }
    let crc = u32::from_str_radix(crc_s, 16).ok()?;
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload)
}

/// What one newline-delimited chunk of the journal decoded to.
enum Decoded<'a> {
    /// A valid v2 frame at chunk start.
    Frame(&'a str),
    /// A valid v2 frame found mid-chunk — garbage (e.g. a torn partial
    /// frame) preceded it and was discarded.
    Resynced(&'a str),
    /// A bare legacy v1 JSON line (no framing to verify).
    Legacy(&'a str),
    /// Unrecoverable garbage.
    Corrupt,
}

fn decode_chunk(chunk: &str) -> Decoded<'_> {
    if let Some(payload) = decode_frame(chunk) {
        return Decoded::Frame(payload);
    }
    // Magic scan: a torn write leaves a partial frame with no newline,
    // so the next appended frame glues onto it. Resync at the first
    // embedded position that validates.
    let mut from = 0;
    while let Some(off) = chunk[from..].find(MAGIC) {
        let at = from + off;
        if at > 0 {
            if let Some(payload) = decode_frame(&chunk[at..]) {
                return Decoded::Resynced(payload);
            }
        }
        from = at + MAGIC.len();
    }
    if chunk.starts_with('{') {
        return Decoded::Legacy(chunk);
    }
    Decoded::Corrupt
}

/// Counters describing what recovery saw at open.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Chunks (or frames) dropped as corrupt: torn tails, checksum
    /// mismatches, unparseable payloads.
    pub skipped_lines: usize,
    /// Records salvaged by resynchronizing past torn garbage.
    pub resynced_records: usize,
    /// Records read in the legacy unframed v1 format.
    pub legacy_lines: usize,
    /// Whether open rewrote the file (corruption found or legacy
    /// records re-framed).
    pub repaired: bool,
}

/// The result of opening a journal: replayed records plus the handle
/// for appending.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    fsync: FsyncPolicy,
    faults: Faults,
    replayed: Vec<Json>,
    recovery: RecoveryStats,
}

impl Journal {
    /// Opens (creating if absent) a journal for append, first replaying
    /// every valid record already present (v2 frames verified by
    /// length + CRC, legacy v1 lines as-is). Corrupt chunks are
    /// skipped and counted, never fatal; if any were found the file is
    /// rewritten in place with only the surviving records.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened,
    /// created, or (when repair is needed) rewritten.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut replayed = Vec::new();
        let mut payloads: Vec<String> = Vec::new();
        let mut recovery = RecoveryStats::default();
        if let Ok(existing) = File::open(&path) {
            // Raw byte lines, decoded lossily per chunk: a crash can
            // tear the final record anywhere — including inside a
            // multi-byte UTF-8 sequence — and replay must skip it, not
            // refuse to start the server. Corrupted bytes become
            // replacement chars and fail the CRC; intact frames glued
            // after torn garbage survive the lossy pass unchanged.
            let mut reader = BufReader::new(existing);
            let mut buf = Vec::new();
            loop {
                buf.clear();
                if reader.read_until(b'\n', &mut buf)? == 0 {
                    break;
                }
                let chunk = String::from_utf8_lossy(&buf);
                let chunk = chunk.trim();
                if chunk.is_empty() {
                    continue;
                }
                let (payload, resynced, legacy) = match decode_chunk(chunk) {
                    Decoded::Frame(p) => (p, false, false),
                    Decoded::Resynced(p) => (p, true, false),
                    Decoded::Legacy(p) => (p, false, true),
                    Decoded::Corrupt => {
                        recovery.skipped_lines += 1;
                        continue;
                    }
                };
                match Json::parse(payload) {
                    Ok(v) if v.get("type").and_then(Json::as_str).is_some() => {
                        recovery.resynced_records += usize::from(resynced);
                        recovery.legacy_lines += usize::from(legacy);
                        payloads.push(payload.to_string());
                        replayed.push(v);
                    }
                    _ => recovery.skipped_lines += 1,
                }
            }
        }
        if recovery.skipped_lines > 0 || recovery.resynced_records > 0 || recovery.legacy_lines > 0
        {
            // Truncate corruption and normalize to v2 framing, atomically.
            write_framed(&path, &payloads)?;
            recovery.repaired = true;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
            fsync: FsyncPolicy::default(),
            faults: Faults::disabled(),
            replayed,
            recovery,
        })
    }

    /// Sets the durability policy for subsequent appends.
    pub fn set_fsync(&mut self, policy: FsyncPolicy) {
        self.fsync = policy;
    }

    /// Arms fault injection for subsequent appends.
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records replayed at open, in file order.
    pub fn replayed(&self) -> &[Json] {
        &self.replayed
    }

    /// Takes ownership of the replayed records, leaving the journal
    /// empty-handed. The server calls this once at startup so the
    /// parsed records (each carrying a full event stream) drop after
    /// conversion instead of living in memory for the process lifetime.
    pub fn take_replayed(&mut self) -> Vec<Json> {
        std::mem::take(&mut self.replayed)
    }

    /// Corrupt chunks skipped at open.
    pub fn skipped_lines(&self) -> usize {
        self.recovery.skipped_lines
    }

    /// Everything recovery saw at open.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Appends one record (the caller passes a complete JSON object
    /// without trailing newline), framed with length + CRC, flushed,
    /// and — under [`FsyncPolicy::Always`] — fsynced.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed write; the record
    /// must then be treated as not durable (it may be partially on
    /// disk, which recovery will discard).
    pub fn append(&self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal records must be single lines");
        let mut frame = encode_frame(line).into_bytes();
        if let Some(roll) = self.faults.fire(site::JOURNAL_BIT_FLIP) {
            // Silent corruption: flip one bit inside the payload (past
            // the header so the frame still parses and only the CRC can
            // tell), then report success.
            let header = frame.len() - line.len();
            let idx = header + (roll as usize) % line.len().max(1);
            if idx < frame.len() {
                frame[idx] ^= 1 << ((roll >> 32) % 8);
            }
        }
        let mut file = self.file.lock().unwrap();
        if let Some(roll) = self.faults.fire(site::JOURNAL_TORN_WRITE) {
            // Crash mid-write: a strict prefix of the frame lands on
            // disk (no newline), then the append fails.
            let cut = (roll as usize) % frame.len().max(1);
            file.write_all(&frame[..cut])?;
            file.flush()?;
            return Err(std::io::Error::other("injected torn write"));
        }
        frame.push(b'\n');
        file.write_all(&frame)?;
        file.flush()?;
        if self.fsync == FsyncPolicy::Always {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Current on-disk size in bytes (compaction trigger input).
    pub fn size_bytes(&self) -> u64 {
        self.file.lock().unwrap().metadata().map_or(0, |m| m.len())
    }

    /// Compaction: atomically replaces the journal's contents with
    /// exactly `lines` (payloads, framed on write; a temp file is
    /// written and renamed over the original, so a crash mid-compaction
    /// leaves either the old or the new journal, never a torn mix). A
    /// long-lived server calls this when the append-only file outgrows
    /// its retention window — every evicted job's record would
    /// otherwise live on disk forever.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the original journal is intact
    /// in that case.
    pub fn rewrite(&self, lines: &[String]) -> std::io::Result<()> {
        // Hold the append lock across the whole swap so a concurrent
        // `append` cannot write to the orphaned pre-rename file.
        let mut file = self.file.lock().unwrap();
        write_framed(&self.path, lines)?;
        *file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        Ok(())
    }
}

/// Writes `payloads` as framed records to a temp file and renames it
/// over `path` (all-or-nothing on crash).
fn write_framed(path: &Path, payloads: &[String]) -> std::io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut out = File::create(&tmp)?;
        for payload in payloads {
            debug_assert!(!payload.contains('\n'));
            out.write_all(encode_frame(payload).as_bytes())?;
            out.write_all(b"\n")?;
        }
        out.flush()?;
        out.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gcln-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrips_records_and_truncates_torn_tails() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            assert!(j.replayed().is_empty());
            j.append(r#"{"type":"job","id":"job-1","valid":true}"#).unwrap();
            j.append(r#"{"type":"job","id":"job-2","valid":false}"#).unwrap();
        }
        // Simulate a crash mid-append: a torn trailing frame, cut inside
        // a multi-byte UTF-8 sequence (the first byte of `é`) — replay
        // must skip it, not refuse to open.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"J2 40 deadbeef {\"type\":\"job\",\"id\":\"job-3\",\"name\":\"caf\xc3").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 2);
        assert_eq!(j.skipped_lines(), 1);
        assert!(j.recovery().repaired, "a corrupt tail must trigger a repair rewrite");
        assert_eq!(j.replayed()[1].get("id").and_then(Json::as_str), Some("job-2"));
        // The repair physically truncated the garbage: a third open is
        // clean.
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 2);
        assert_eq!(j.skipped_lines(), 0);
        assert!(!j.recovery().repaired);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checksum_rejects_flipped_bits() {
        let path = tmp("bitflip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.append(r#"{"type":"job","id":"job-1"}"#).unwrap();
            j.append(r#"{"type":"job","id":"job-2"}"#).unwrap();
        }
        // Flip one payload bit in the first record on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.iter().position(|&b| b == b'1').unwrap();
        bytes[idx] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 1, "the corrupted record must be dropped");
        assert_eq!(j.replayed()[0].get("id").and_then(Json::as_str), Some("job-2"));
        assert_eq!(j.skipped_lines(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn magic_scan_recovers_a_record_glued_after_torn_garbage() {
        let path = tmp("resync.jsonl");
        let _ = std::fs::remove_file(&path);
        // A torn partial frame with no newline, then a valid frame
        // appended straight after it — one physical line on disk.
        let good = r#"{"type":"job","id":"job-2"}"#;
        let glued = format!("J2 99 0badc0de {{\"type\":\"jo{}\n", encode_frame(good));
        std::fs::write(&path, glued).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 1);
        assert_eq!(j.replayed()[0].get("id").and_then(Json::as_str), Some("job-2"));
        assert_eq!(j.recovery().resynced_records, 1);
        assert!(j.recovery().repaired);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v1_lines_replay_and_are_reframed() {
        let path = tmp("legacy.jsonl");
        std::fs::write(
            &path,
            "{\"type\":\"metrics\",\"x\":1}\n{\"type\":\"job\",\"id\":\"job-9\"}\nnot json at all\n",
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        // All typed records replay (the server filters by type);
        // unparseable garbage is skipped.
        assert_eq!(j.replayed().len(), 2);
        assert_eq!(j.recovery().legacy_lines, 2);
        assert_eq!(j.skipped_lines(), 1);
        assert!(j.recovery().repaired, "legacy journals are migrated to v2 at open");
        // After migration everything is framed: re-open sees v2 only.
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 2);
        assert_eq!(j.recovery().legacy_lines, 0);
        assert_eq!(j.skipped_lines(), 0);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.lines().all(|l| l.starts_with("J2 ")));
        assert!(contents.contains(r#""type":"job""#), "payloads must stay greppable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_contents_atomically_and_appends_continue() {
        let path = tmp("rewrite.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        for i in 0..10 {
            j.append(&format!(r#"{{"type":"job","id":"job-{i}"}}"#)).unwrap();
        }
        let before = j.size_bytes();
        assert!(before > 0);
        j.rewrite(&[r#"{"type":"job","id":"job-8"}"#.into(), r#"{"type":"job","id":"job-9"}"#.into()])
            .unwrap();
        assert!(j.size_bytes() < before, "compaction must shrink the file");
        // Appends after a rewrite land in the *new* file.
        j.append(r#"{"type":"job","id":"job-10"}"#).unwrap();
        let reopened = Journal::open(&path).unwrap();
        let ids: Vec<&str> = reopened
            .replayed()
            .iter()
            .filter_map(|v| v.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, ["job-8", "job-9", "job-10"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_torn_write_fails_the_append_and_recovery_truncates() {
        let path = tmp("fault-torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.set_faults(Faults::parse("seed=7,journal.torn_write=1.0:1").unwrap());
        let err = j.append(r#"{"type":"job","id":"job-1"}"#);
        assert!(err.is_err(), "a torn write must surface as an error");
        // The fault has a fire limit of 1: later appends succeed, even
        // though the torn prefix sits mid-file.
        j.append(r#"{"type":"job","id":"job-2"}"#).unwrap();
        j.append(r#"{"type":"job","id":"job-3"}"#).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        let ids: Vec<&str> = j
            .replayed()
            .iter()
            .filter_map(|v| v.get("id").and_then(Json::as_str))
            .collect();
        assert!(!ids.contains(&"job-1"), "the torn record must not replay");
        assert!(
            ids.contains(&"job-2"),
            "the record glued after the tear is recovered by magic scan"
        );
        assert!(ids.contains(&"job-3"), "records after the tear survive");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_bit_flip_reports_success_but_is_dropped_at_recovery() {
        let path = tmp("fault-flip.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.set_faults(Faults::parse("seed=11,journal.bit_flip=1.0:1").unwrap());
        j.append(r#"{"type":"job","id":"job-1"}"#).unwrap();
        j.append(r#"{"type":"job","id":"job-2"}"#).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 1, "the silently corrupted record must be dropped");
        assert_eq!(j.skipped_lines(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_always_roundtrips() {
        let path = tmp("fsync.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).unwrap();
        j.set_fsync(FsyncPolicy::Always);
        j.append(r#"{"type":"job","id":"job-1"}"#).unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.replayed().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
