//! The spec cache: content-hashed memoization of
//! [`ProblemSpec::from_source_str`].
//!
//! Parsing a `.loop` source and auto-deriving its configuration (term
//! degree, input ranges, extended terms) is pure in the source bytes,
//! so the cache key is simply [`fnv1a64`] over the source. Keys are
//! *byte*-sensitive: any mutation — whitespace, comments, reordering —
//! misses, which keeps the cache trivially sound (a hit can never serve
//! a spec derived from different bytes).
//!
//! Submissions may name their program via the API while sharing source
//! bytes, so cached specs are stored under the parser's fallback name
//! and [`SpecCache::fetch`] re-applies the caller's name on each hit.

use gcln_engine::cache::{fnv1a64, CacheStats};
use gcln_engine::{ProblemSpec, SpecError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared memo of parsed [`ProblemSpec`]s keyed by source hash.
///
/// Capacity-bounded (insertion-order eviction): every edit of an
/// iterated source is a new key, so an uncapped map would grow with
/// distinct submissions for the life of the server.
#[derive(Debug)]
pub struct SpecCache {
    inner: Mutex<SpecInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct SpecInner {
    map: HashMap<u64, Arc<ProblemSpec>>,
    /// Keys in insertion order (eviction order).
    order: std::collections::VecDeque<u64>,
}

/// Default [`SpecCache`] capacity; specs are much smaller than trace
/// entries, so the default is roomier.
pub const DEFAULT_SPEC_CAPACITY: usize = 1024;

impl Default for SpecCache {
    fn default() -> SpecCache {
        SpecCache::new()
    }
}

impl SpecCache {
    /// A fresh cache with the default capacity.
    pub fn new() -> SpecCache {
        SpecCache::with_capacity(DEFAULT_SPEC_CAPACITY)
    }

    /// A fresh cache holding at most `capacity` entries (min 1); the
    /// oldest entry is evicted beyond that.
    pub fn with_capacity(capacity: usize) -> SpecCache {
        SpecCache {
            inner: Mutex::new(SpecInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a source: FNV-1a 64 over its bytes.
    pub fn key(source: &str) -> u64 {
        fnv1a64(source.as_bytes())
    }

    /// Returns the spec for a source, parsing and deriving configuration
    /// only on the first sighting of these exact bytes. `name` is the
    /// submission's program name, applied to the returned copy when the
    /// source has no explicit `program <name>;` header (the cached entry
    /// itself stays name-neutral).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the source fails to parse or resolve
    /// (parse failures are not cached — they are cheap to re-diagnose
    /// and should not occupy memory).
    pub fn fetch(&self, source: &str, name: Option<&str>) -> Result<(u64, ProblemSpec), SpecError> {
        let key = SpecCache::key(source);
        // A hit must carry byte-identical source: FNV is not collision
        // resistant, and in a multi-user service a crafted collision
        // must re-parse as a miss, never serve another program's spec.
        let cached = self
            .inner
            .lock()
            .unwrap()
            .map
            .get(&key)
            .filter(|e| e.problem.source == source)
            .cloned();
        let entry = match cached {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                e
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let spec = Arc::new(ProblemSpec::from_source_str(
                    gcln_lang::Program::DEFAULT_NAME,
                    source,
                )?);
                let mut inner = self.inner.lock().unwrap();
                match inner.map.get(&key) {
                    // A racing identical fetch beat us to the slot.
                    Some(existing) if existing.problem.source == source => existing.clone(),
                    // Slot held by a colliding different source: serve
                    // our parse uncached rather than evict the resident.
                    Some(_) => spec,
                    None => {
                        while inner.map.len() >= self.capacity {
                            let Some(oldest) = inner.order.pop_front() else { break };
                            inner.map.remove(&oldest);
                        }
                        inner.map.insert(key, spec.clone());
                        inner.order.push_back(key);
                        spec
                    }
                }
            }
        };
        let mut spec = (*entry).clone();
        if let Some(name) = name {
            if !spec.problem.program.has_explicit_name() {
                spec.problem.name = name.to_string();
            }
        }
        Ok((key, spec))
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "inputs n; pre n >= 0; post x == n * n;
        x = 0; i = 0; while (i < n) { i = i + 1; x = x + 2 * i - 1; }";

    #[test]
    fn identical_bytes_hit_and_mutations_miss() {
        let cache = SpecCache::new();
        let (k1, _) = cache.fetch(SRC, None).unwrap();
        let (k2, _) = cache.fetch(SRC, None).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        // One extra space is a different submission.
        let mutated = SRC.replacen(';', " ;", 1);
        let (k3, _) = cache.fetch(&mutated, None).unwrap();
        assert_ne!(k1, k3);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn caller_names_apply_per_fetch_without_poisoning_the_entry() {
        let cache = SpecCache::new();
        let (_, a) = cache.fetch(SRC, Some("alpha")).unwrap();
        let (_, b) = cache.fetch(SRC, Some("beta")).unwrap();
        assert_eq!(a.problem.name, "alpha");
        assert_eq!(b.problem.name, "beta");
        assert_eq!(cache.stats().hits, 1, "the rename must not defeat the cache");
        // Explicit program headers win over the caller's name.
        let named = format!("program fixed;\n{SRC}");
        let (_, c) = cache.fetch(&named, Some("ignored")).unwrap();
        assert_eq!(c.problem.name, "fixed");
    }

    #[test]
    fn capacity_evicts_oldest_entries() {
        let cache = SpecCache::with_capacity(2);
        let src = |i: usize| format!("inputs n; pre n >= {i}; x = n;");
        for i in 0..3 {
            cache.fetch(&src(i), None).unwrap();
        }
        assert_eq!(cache.stats().entries, 2);
        // The oldest source re-parses (miss), the newest still hits.
        cache.fetch(&src(0), None).unwrap();
        assert_eq!(cache.stats().hits, 0);
        cache.fetch(&src(2), None).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = SpecCache::new();
        assert!(cache.fetch("while (", None).is_err());
        assert!(cache.fetch("while (", None).is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 2);
    }
}
