//! Per-client token-bucket rate limiting for `POST /jobs`.
//!
//! Each client key (the `x-client-id` header when present, else the
//! peer IP) owns a bucket of `burst` tokens refilling at `rate_per_sec`.
//! A submission costs one token; an empty bucket answers `429` with a
//! `Retry-After` telling the client when the next token lands.
//!
//! The remaining-token count doubles as the admitted job's **scheduler
//! priority**: clients with headroom left get their jobs picked before
//! jobs from clients hammering the API, so a burst-heavy client
//! degrades its own latency first, not its neighbors' (see
//! `gcln_sched`'s priority ring).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Rate-limit settings for one server.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Sustained tokens per second per client.
    pub rate_per_sec: f64,
    /// Bucket capacity (burst size), in tokens.
    pub burst: f64,
}

impl RateLimit {
    /// A limit of `rate_per_sec` with a burst of twice that (min 1).
    pub fn per_sec(rate_per_sec: f64) -> RateLimit {
        RateLimit { rate_per_sec, burst: (2.0 * rate_per_sec).max(1.0) }
    }
}

/// The outcome of charging one token.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// Admitted; `priority` is the whole tokens left in the bucket
    /// (higher ⇒ more headroom ⇒ scheduled sooner).
    Granted {
        /// Scheduler priority derived from the remaining allowance.
        priority: i32,
    },
    /// Rejected; retry after this many seconds (≥ 1 when rounded up).
    Rejected {
        /// Seconds until the next token accrues.
        retry_after_secs: f64,
    },
}

/// A concurrent token-bucket table, capacity-bounded: when the table
/// exceeds its cap, buckets that have refilled to full (i.e. carry no
/// information) are dropped.
#[derive(Debug)]
pub struct RateLimiter {
    limit: RateLimit,
    buckets: Mutex<HashMap<String, (f64, Instant)>>,
    max_clients: usize,
}

/// Default bound on tracked client buckets.
pub const DEFAULT_MAX_CLIENTS: usize = 8192;

impl RateLimiter {
    /// A limiter enforcing `limit` per client key.
    pub fn new(limit: RateLimit) -> RateLimiter {
        RateLimiter {
            limit: RateLimit {
                rate_per_sec: limit.rate_per_sec.max(1e-6),
                burst: limit.burst.max(1.0),
            },
            buckets: Mutex::new(HashMap::new()),
            max_clients: DEFAULT_MAX_CLIENTS,
        }
    }

    /// Charges one token against `key`'s bucket at time `now`.
    pub fn admit(&self, key: &str, now: Instant) -> Admission {
        let mut buckets = self.buckets.lock().unwrap();
        if buckets.len() >= self.max_clients && !buckets.contains_key(key) {
            // Drop buckets that have refilled to capacity — they are
            // indistinguishable from fresh ones.
            let limit = self.limit;
            buckets.retain(|_, (tokens, at)| {
                refill(tokens, at, now, limit);
                *tokens < limit.burst
            });
            // Hard cap: a unique-key flood keeps every bucket mid-refill,
            // so when the retain freed nothing, evict the fullest bucket
            // (the one closest to carrying no information). The table
            // can never exceed `max_clients`.
            while buckets.len() >= self.max_clients {
                let victim = buckets
                    .iter()
                    .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                    .map(|(k, _)| k.clone())
                    .expect("nonempty table");
                buckets.remove(&victim);
            }
        }
        let (tokens, refilled_at) =
            buckets.entry(key.to_string()).or_insert((self.limit.burst, now));
        refill(tokens, refilled_at, now, self.limit);
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            Admission::Granted { priority: tokens.floor() as i32 }
        } else {
            Admission::Rejected { retry_after_secs: (1.0 - *tokens) / self.limit.rate_per_sec }
        }
    }

    /// Tracked client buckets (diagnostics).
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().unwrap().len()
    }
}

fn refill(tokens: &mut f64, refilled_at: &mut Instant, now: Instant, limit: RateLimit) {
    let dt = now.saturating_duration_since(*refilled_at).as_secs_f64();
    *tokens = (*tokens + dt * limit.rate_per_sec).min(limit.burst);
    *refilled_at = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_reject_then_refill() {
        let rl = RateLimiter::new(RateLimit { rate_per_sec: 2.0, burst: 3.0 });
        let t0 = Instant::now();
        // Burst of 3 admitted with descending priority.
        assert_eq!(rl.admit("a", t0), Admission::Granted { priority: 2 });
        assert_eq!(rl.admit("a", t0), Admission::Granted { priority: 1 });
        assert_eq!(rl.admit("a", t0), Admission::Granted { priority: 0 });
        let Admission::Rejected { retry_after_secs } = rl.admit("a", t0) else {
            panic!("4th burst call must be rejected");
        };
        assert!(retry_after_secs > 0.0 && retry_after_secs <= 0.5, "{retry_after_secs}");
        // After one second at 2 tokens/sec, two more fit.
        let t1 = t0 + Duration::from_secs(1);
        assert!(matches!(rl.admit("a", t1), Admission::Granted { .. }));
        assert!(matches!(rl.admit("a", t1), Admission::Granted { .. }));
        assert!(matches!(rl.admit("a", t1), Admission::Rejected { .. }));
    }

    #[test]
    fn clients_are_isolated() {
        let rl = RateLimiter::new(RateLimit { rate_per_sec: 1.0, burst: 1.0 });
        let t0 = Instant::now();
        assert!(matches!(rl.admit("a", t0), Admission::Granted { .. }));
        assert!(matches!(rl.admit("a", t0), Admission::Rejected { .. }));
        // A different client still has its full bucket.
        assert!(matches!(rl.admit("b", t0), Admission::Granted { .. }));
        assert_eq!(rl.tracked_clients(), 2);
    }

    #[test]
    fn unique_key_flood_cannot_grow_the_table_past_the_cap() {
        let mut rl = RateLimiter::new(RateLimit { rate_per_sec: 0.1, burst: 1.0 });
        rl.max_clients = 8;
        let t0 = Instant::now();
        // Nothing refills at t0, so the soft eviction frees nothing —
        // the hard cap must hold anyway.
        for i in 0..100 {
            assert!(matches!(rl.admit(&format!("flood-{i}"), t0), Admission::Granted { .. }));
            assert!(rl.tracked_clients() <= 8, "at i={i}: {}", rl.tracked_clients());
        }
    }

    #[test]
    fn full_buckets_are_evicted_at_capacity() {
        let mut rl = RateLimiter::new(RateLimit { rate_per_sec: 100.0, burst: 1.0 });
        rl.max_clients = 4;
        let t0 = Instant::now();
        for i in 0..4 {
            rl.admit(&format!("c{i}"), t0);
        }
        assert_eq!(rl.tracked_clients(), 4);
        // Much later every old bucket has refilled; a new client evicts
        // them instead of growing the table.
        let t1 = t0 + Duration::from_secs(60);
        assert!(matches!(rl.admit("fresh", t1), Admission::Granted { .. }));
        assert_eq!(rl.tracked_clients(), 1, "refilled buckets must be dropped");
    }
}
