//! A hand-rolled HTTP/1.1 subset: request reading over any
//! [`Read`] source and response writing over any [`Write`] sink.
//!
//! No async runtime exists in the offline vendor set, so the server is
//! plain blocking I/O: one connection per thread, `Connection: close`
//! semantics (each connection carries exactly one request/response
//! exchange). The parser is incremental — it consumes the stream in
//! chunks and never assumes a full request arrives in one read, which
//! is what the property tests exercise with adversarial byte splits.
//!
//! Malformed traffic is an error *value*, never a panic: every parse
//! failure maps to a 4xx/5xx [`HttpError`] the server renders as a JSON
//! error body.

use std::io::{Read, Write};

/// Parser limits; both are generous for the job API but small enough
/// that a hostile peer cannot balloon memory.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum request body bytes (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_head_bytes: 16 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// A parsed request: method, target, lower-cased headers in order, and
/// the raw body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target as sent (path plus optional query).
    pub target: String,
    /// Headers in order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// A request-level failure, carrying the HTTP status to answer with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (always 4xx or 5xx).
    pub status: u16,
    /// Human-readable cause, sent in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// A new error.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// Reads one request from `src`. Returns `Ok(None)` when the peer
/// closed the connection before sending anything (a clean no-request
/// close, not an error).
///
/// # Errors
///
/// Every malformed, oversized, or truncated request maps to an
/// [`HttpError`] with a 4xx/5xx status — never a panic:
///
/// - 400 — malformed request line/headers, truncated stream, bad
///   `Content-Length`
/// - 405-compatible method charset violations also yield 400
/// - 408 — the source's read timeout expired mid-request (a slowloris
///   peer dribbling bytes slower than the socket timeout)
/// - 413 — declared body larger than [`Limits::max_body_bytes`]
/// - 431 — head larger than [`Limits::max_head_bytes`]
/// - 501 — `Transfer-Encoding` (chunked bodies are not supported)
/// - 505 — HTTP version other than 1.x
pub fn read_request(src: &mut impl Read, limits: &Limits) -> Result<Option<Request>, HttpError> {
    // --- accumulate the head (request line + headers) ---
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    // Terminator search resumes where the last scan left off (backed up
    // far enough to catch a terminator spanning the chunk boundary) —
    // a byte-dribbling client must cost linear, not quadratic, work.
    let mut search_from = 0usize;
    let head_end = loop {
        if let Some(i) = find_head_end(&buf, search_from) {
            break i;
        }
        search_from = buf.len().saturating_sub(3);
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::new(431, "request head too large"));
        }
        let mut chunk = [0u8; 1024];
        let n = src.read(&mut chunk).map_err(read_error)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::new(400, "truncated request head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::new(431, "request head too large"));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    // --- request line ---
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, "malformed method"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, "unsupported HTTP version"));
    }

    // --- headers ---
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header line"));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::new(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = |body| Request {
        method: method.to_string(),
        target: target.to_string(),
        headers: headers.clone(),
        body,
    };

    // --- body ---
    let probe = request(Vec::new());
    if probe.header("transfer-encoding").is_some() {
        return Err(HttpError::new(501, "transfer-encoding is not supported"));
    }
    let Some(cl) = probe.header("content-length") else {
        return Ok(Some(probe));
    };
    let content_length: usize =
        cl.parse().map_err(|_| HttpError::new(400, "bad content-length"))?;
    if content_length > limits.max_body_bytes {
        return Err(HttpError::new(413, "request body too large"));
    }
    // Bytes already buffered past the head belong to the body.
    let mut body: Vec<u8> = buf[head_end + head_terminator_len(&buf, head_end)..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = src.read(&mut chunk[..want]).map_err(read_error)?;
        if n == 0 {
            return Err(HttpError::new(400, "truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Some(request(body)))
}

/// Maps a source read failure to its HTTP status: socket timeouts
/// (`TimedOut` on Unix, `WouldBlock` from `set_read_timeout` on some
/// platforms) are the peer's fault and answer 408; anything else is a
/// generic 400.
fn read_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            HttpError::new(408, "timed out reading the request")
        }
        _ => HttpError::new(400, format!("read: {e}")),
    }
}

/// Byte offset of the end of the head (exclusive of the blank line), or
/// `None` if the head terminator has not arrived yet. Accepts both
/// `\r\n\r\n` and bare `\n\n`. Scanning starts at `from` (callers pass
/// the resume point; results are absolute offsets).
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let window = buf.get(from..)?;
    let crlf = window.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + from);
    let lf = window.windows(2).position(|w| w == b"\n\n").map(|p| p + from);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b + 1)), // earliest terminator wins
        (Some(a), None) => Some(a),
        // `\n\n` at position b: head ends after the first `\n`.
        (None, Some(b)) => Some(b + 1),
        (None, None) => None,
    }
}

/// Length of the terminator that ended the head at `head_end`.
fn head_terminator_len(buf: &[u8], head_end: usize) -> usize {
    if buf[head_end..].starts_with(b"\r\n\r\n") {
        4
    } else {
        1 // the closing `\n` of a bare `\n\n`
    }
}

/// A response: status, extra headers, and body. `Content-Length`,
/// `Content-Type`, and `Connection: close` are emitted automatically.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Additional headers (name, value) beyond the automatic ones.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// `Content-Type` emitted with the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (Prometheus exposition format 0.0.4 — the
    /// `/metrics` endpoint's content type).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// A JSON error body `{"error": message}` for a status.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!(r#"{{"error":{}}}"#, gcln_engine::events::json_string(message)),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response to a sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn write_to(&self, sink: &mut impl Write) -> std::io::Result<()> {
        write!(sink, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        write!(sink, "content-type: {}\r\n", self.content_type)?;
        write!(sink, "content-length: {}\r\n", self.body.len())?;
        write!(sink, "connection: close\r\n")?;
        for (name, value) in &self.headers {
            write!(sink, "{name}: {value}\r\n")?;
        }
        sink.write_all(b"\r\n")?;
        sink.write_all(&self.body)?;
        sink.flush()
    }
}

impl From<HttpError> for Response {
    fn from(e: HttpError) -> Response {
        Response::error(e.status, &e.message)
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut std::io::Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/jobs?x=1");
        assert_eq!(req.path(), "/jobs");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /healthz HTTP/1.1\nhost: h\n\n").unwrap().unwrap();
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn empty_connection_is_a_clean_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_map_to_4xx() {
        for (bytes, status) in [
            (&b"GARBAGE\r\n\r\n"[..], 400),
            (b"get /x HTTP/1.1\r\n\r\n", 400),
            (b"GET /x HTTP/2\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nname space: v\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort", 400),
            (b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501),
            (b"GET /x", 400), // truncated head
        ] {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.status, status, "{:?} -> {err:?}", String::from_utf8_lossy(bytes));
        }
    }

    #[test]
    fn a_read_timeout_mid_request_maps_to_408() {
        // A slowloris peer: a few bytes arrive, then the socket's read
        // timeout fires (surfaced by the OS as TimedOut/WouldBlock).
        struct Slowloris {
            sent: bool,
        }
        impl Read for Slowloris {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.sent {
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
                self.sent = true;
                let bytes = b"POST /jobs HT";
                buf[..bytes.len()].copy_from_slice(bytes);
                Ok(bytes.len())
            }
        }
        let err =
            read_request(&mut Slowloris { sent: false }, &Limits::default()).unwrap_err();
        assert_eq!(err.status, 408);
        assert_eq!(reason(408), "Request Timeout");
        // Same mapping when the timeout hits mid-body.
        struct BodyStall {
            fed: bool,
        }
        impl Read for BodyStall {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.fed {
                    return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
                }
                self.fed = true;
                let bytes = b"POST /jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
                buf[..bytes.len()].copy_from_slice(bytes);
                Ok(bytes.len())
            }
        }
        let err = read_request(&mut BodyStall { fed: false }, &Limits::default()).unwrap_err();
        assert_eq!(err.status, 408);
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 8 };
        let mut big_head = b"GET /x HTTP/1.1\r\n".to_vec();
        big_head.extend_from_slice(format!("a: {}\r\n\r\n", "x".repeat(200)).as_bytes());
        let err = read_request(&mut std::io::Cursor::new(big_head), &limits).unwrap_err();
        assert_eq!(err.status, 431);
        let err = read_request(
            &mut std::io::Cursor::new(b"POST /x HTTP/1.1\r\ncontent-length: 9\r\n\r\n".to_vec()),
            &limits,
        )
        .unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn response_serializes_with_framing() {
        let mut out = Vec::new();
        Response::json(503, r#"{"error":"full"}"#)
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("content-length: 16\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"full\"}"));
    }
}
