//! A minimal JSON value type with a strict recursive-descent parser and
//! a renderer.
//!
//! The build environment is offline (no serde), and the service needs
//! to *parse* JSON — request bodies, journal replay, and the test
//! suite's validation that every engine [`gcln_engine::Event`] line is
//! well-formed. The parser is strict per RFC 8259: unescaped control
//! characters, lone surrogates, trailing garbage, and malformed numbers
//! are all rejected, which is exactly what makes it useful as a test
//! oracle for the hand-rolled serializers.

use std::fmt;

/// A parsed JSON value. Object members keep their source order (lookup
/// is linear — objects in this workspace are small).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting cap: deeper documents are rejected rather than risking a
/// stack overflow on adversarial input (the parser is recursive).
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any RFC 8259 violation.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON. Round trip: for any `v`,
    /// `Json::parse(&v.render()).unwrap() == v` (NaN/infinite numbers,
    /// which valid parses never produce, render as `null`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&render_number(*v)),
            Json::Str(s) => out.push_str(&gcln_engine::events::json_string(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&gcln_engine::events::json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Integers that fit exactly render without a fractional part; other
/// finite numbers use Rust's shortest-roundtrip float formatting.
fn render_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").then_some(Json::Null).ok_or_else(|| self.err("bad literal")),
            Some(b't') => self.eat("true").then_some(Json::Bool(true)).ok_or_else(|| self.err("bad literal")),
            Some(b'f') => {
                self.eat("false").then_some(Json::Bool(false)).ok_or_else(|| self.err("bad literal"))
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a paired \uXXXX low.
                                if !self.eat("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                None // lone low surrogate
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character")),
                _ => {
                    // Multi-byte UTF-8 is passed through; the input is a
                    // `&str` so the sequence is known-valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is utf-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated \\u escape"));
        };
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            self.digits();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text.parse().map_err(|_| self.err("unrepresentable number"))?;
        Ok(Json::Num(v))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\nb\u0041""#).unwrap(), Json::Str("a\nbA".into()));
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn surrogate_pairs_and_lone_surrogates() {
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
        assert!(Json::parse(r#""\ud83dxx""#).is_err());
    }

    #[test]
    fn rejects_rfc_violations() {
        for bad in [
            "", "tru", "nul", "01", "1.", ".5", "1e", "+1", "--1", "[1,]", "[1 2]", "{\"a\"1}",
            "{a:1}", "\"\x01\"", "\"unterminated", "{\"a\":1} extra", "[1,2],", "\"\\x\"",
            "\u{7}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn render_roundtrips() {
        for text in [
            r#"{"a":[1,2.5,-3],"b":"q\"\\\n","c":null,"d":true,"e":{}}"#,
            r#"[[],{},"😀",1e300]"#,
        ] {
            let v = Json::parse(text).unwrap();
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "unstable: {rendered}");
        }
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
