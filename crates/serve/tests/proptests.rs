//! Property tests for the service's parsing surfaces:
//!
//! - the HTTP request parser survives arbitrary bytes, arbitrary chunk
//!   splits, truncation, and oversized inputs — always a 4xx/5xx error
//!   value, never a panic;
//! - spec-cache keys are stable under byte identity and sensitive to
//!   any mutation;
//! - every engine [`Event`] serializes to well-formed JSON (the
//!   regression suite for `Event::to_json` string escaping), with
//!   string payloads surviving the roundtrip exactly;
//! - the JSON value type itself roundtrips parse ∘ render;
//! - journal recovery under arbitrary corruption (truncation, bit
//!   flips, torn suffixes) never panics, replays an in-order subset of
//!   the appended records, and leaves a repaired file that reopens
//!   clean.

use gcln_checker::CexKind;
use gcln_engine::events::{json_string, Event, Stage, StopReason};
use gcln_serve::cache::SpecCache;
use gcln_serve::http::{read_request, Limits};
use gcln_serve::json::Json;
use gcln_serve::Journal;
use proptest::prelude::*;
use std::io::Read;

/// A reader that hands back its data in a caller-chosen chunk pattern
/// (cycling; falls back to 1-byte reads when the pattern runs dry), so
/// the parser sees every possible split of the byte stream.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> ChunkedReader {
        ChunkedReader { data, pos: 0, chunks, next: 0 }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let step = if self.chunks.is_empty() {
            1
        } else {
            let s = self.chunks[self.next % self.chunks.len()].max(1);
            self.next += 1;
            s
        };
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Strings over the full byte range (controls, quotes, backslashes —
/// the characters that break naive JSON serializers).
fn raw_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..24)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

/// A syntactically valid `.loop` source parameterized enough that
/// different draws really are different programs.
fn valid_source() -> impl Strategy<Value = String> {
    (0i64..50, 1i64..9).prop_map(|(lo, c)| {
        format!(
            "inputs n; pre n >= {lo}; post x == {c} * n;\n\
             x = 0; i = 0;\n\
             while (i < n) {{ i = i + 1; x = x + {c}; }}\n"
        )
    })
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_and_errors_are_http_statuses(
        data in prop::collection::vec(any::<u8>(), 0..600),
        chunks in prop::collection::vec(1usize..9, 0..40),
    ) {
        let mut reader = ChunkedReader::new(data, chunks);
        match read_request(&mut reader, &Limits::default()) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                (400..=599).contains(&e.status),
                "non-HTTP error status {}", e.status
            ),
        }
    }

    #[test]
    fn wellformed_requests_survive_arbitrary_chunk_splits(
        body in prop::collection::vec(any::<u8>(), 0..200),
        pad in "[a-z0-9]{0,40}",
        chunks in prop::collection::vec(1usize..9, 1..40),
    ) {
        let mut wire = format!(
            "POST /jobs?q=1 HTTP/1.1\r\nHost: test\r\nX-Pad: {pad}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(&body);
        let mut reader = ChunkedReader::new(wire, chunks);
        let req = read_request(&mut reader, &Limits::default())
            .expect("valid request must parse")
            .expect("valid request is not a clean close");
        prop_assert_eq!(&req.method, "POST");
        prop_assert_eq!(req.path(), "/jobs");
        prop_assert_eq!(req.header("x-pad"), Some(pad.as_str()));
        prop_assert_eq!(req.body, body);
    }

    #[test]
    fn truncated_requests_are_a_4xx_not_a_panic(
        body in prop::collection::vec(any::<u8>(), 1..100),
        cut_seed in any::<u64>(),
        chunks in prop::collection::vec(1usize..9, 1..20),
    ) {
        let mut wire = format!(
            "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(&body);
        // Cut anywhere strictly inside the request (never zero, never
        // the complete request).
        let cut = 1 + (cut_seed as usize) % (wire.len() - 1);
        wire.truncate(cut);
        let mut reader = ChunkedReader::new(wire, chunks);
        let err = read_request(&mut reader, &Limits::default())
            .expect_err("truncated request must error");
        prop_assert!((400..=499).contains(&err.status), "status {}", err.status);
    }

    #[test]
    fn oversized_requests_are_rejected_with_413_or_431(
        declared in 0usize..10_000,
        pad_len in 0usize..2_000,
    ) {
        let limits = Limits { max_head_bytes: 256, max_body_bytes: 512 };
        // Oversized declared body.
        let wire = format!("POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n", declared)
            .into_bytes();
        let result = read_request(
            &mut ChunkedReader::new(wire, vec![7]),
            &limits,
        );
        if declared > limits.max_body_bytes {
            prop_assert_eq!(result.unwrap_err().status, 413);
        } else {
            // Underdeclared bodies just come up truncated here (no body
            // bytes follow) — that is the 400 family, or a clean parse
            // for zero.
            match result {
                Ok(_) => prop_assert_eq!(declared, 0),
                Err(e) => prop_assert!((400..=499).contains(&e.status)),
            }
        }
        // Oversized head.
        let wire = format!(
            "GET /x HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "p".repeat(pad_len)
        )
        .into_bytes();
        let result = read_request(&mut ChunkedReader::new(wire, vec![13]), &limits);
        if pad_len > limits.max_head_bytes {
            prop_assert_eq!(result.unwrap_err().status, 431);
        } else if let Err(e) = result {
            prop_assert!((400..=499).contains(&e.status));
        }
    }

    #[test]
    fn spec_cache_keys_are_stable_and_mutation_sensitive(
        source in raw_string(),
        flip_seed in any::<u64>(),
    ) {
        prop_assume!(!source.is_empty());
        // Byte-identical sources produce the same key, always.
        prop_assert_eq!(SpecCache::key(&source), SpecCache::key(&source.clone()));
        // Any single-character mutation produces a different key.
        let chars: Vec<char> = source.chars().collect();
        let at = (flip_seed as usize) % chars.len();
        let mut mutated: Vec<char> = chars.clone();
        mutated[at] = if chars[at] == 'z' { 'q' } else { 'z' };
        let mutated: String = mutated.into_iter().collect();
        prop_assume!(mutated != source);
        prop_assert_ne!(SpecCache::key(&source), SpecCache::key(&mutated));
    }

    #[test]
    fn spec_cache_hits_byte_identical_sources_and_misses_mutants(
        source in valid_source(),
    ) {
        let cache = SpecCache::new();
        let (k1, _) = cache.fetch(&source, None).unwrap();
        let (k2, _) = cache.fetch(&source, None).unwrap();
        prop_assert_eq!(k1, k2);
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
        // A whitespace-only mutation is still a different submission.
        let mutated = format!("{source} ");
        let (k3, _) = cache.fetch(&mutated, None).unwrap();
        prop_assert_ne!(k1, k3);
        prop_assert_eq!(cache.stats().misses, 2);
        prop_assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn every_event_serializes_to_wellformed_json(
        problem in raw_string(),
        formula in raw_string(),
        ms in any::<f64>(),
        round in 0usize..4,
        loop_id in 0usize..4,
        attempt in 0usize..6,
        conjuncts in 0usize..8,
        flag in any::<bool>(),
        state in prop::collection::vec(any::<i128>(), 0..5),
    ) {
        let events = [
            Event::JobStarted { problem: problem.clone(), loops: loop_id },
            Event::StageStarted { round, stage: Stage::Train },
            Event::StageFinished { round, stage: Stage::Check, ms },
            Event::AttemptResult { round, loop_id, attempt, conjuncts, skipped: flag },
            Event::InvariantLearned {
                round,
                loop_id,
                conjuncts,
                formula: formula.clone(),
            },
            Event::Counterexample {
                round,
                loop_id,
                kind: CexKind::Consecution,
                state: state.clone(),
                reachable: flag,
            },
            Event::JobStopped { reason: StopReason::Cancelled },
            Event::JobFinished { valid: flag, cegis_rounds: round, ms },
        ];
        for event in &events {
            let line = event.to_json();
            prop_assert!(!line.contains('\n'), "event line must be single-line: {line:?}");
            let parsed = Json::parse(&line);
            prop_assert!(parsed.is_ok(), "invalid JSON line {line:?}: {:?}", parsed.err());
            let parsed = parsed.unwrap();
            prop_assert!(
                parsed.get("event").and_then(Json::as_str).is_some(),
                "untagged event: {line}"
            );
        }
        // String payloads — including quotes, backslashes, and control
        // characters — must roundtrip exactly through the escaping.
        let started = Json::parse(&events[0].to_json()).unwrap();
        prop_assert_eq!(started.get("problem").and_then(Json::as_str), Some(problem.as_str()));
        let learned = Json::parse(&events[4].to_json()).unwrap();
        prop_assert_eq!(learned.get("formula").and_then(Json::as_str), Some(formula.as_str()));
        // Counterexample states are exact integers.
        let cex = Json::parse(&events[5].to_json()).unwrap();
        let rendered_state: Vec<String> = cex
            .get("state")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(Json::render)
            .collect();
        let expected: Vec<String> = state.iter().map(|v| {
            // i128 values beyond f64's exact range lose precision in the
            // Num(f64) representation; compare through the same lens.
            let f = *v as f64;
            if f.fract() == 0.0 && f.abs() < 9e15 {
                format!("{}", f as i64)
            } else {
                format!("{f}")
            }
        }).collect();
        prop_assert_eq!(rendered_state, expected);
    }

    #[test]
    fn json_string_output_always_parses_back(s in raw_string()) {
        let encoded = json_string(&s);
        let parsed = Json::parse(&encoded);
        prop_assert!(parsed.is_ok(), "json_string produced invalid JSON: {encoded:?}");
        prop_assert_eq!(parsed.unwrap(), Json::Str(s));
    }

    #[test]
    fn json_values_roundtrip_parse_render(v in arb_json()) {
        let rendered = v.render();
        let reparsed = Json::parse(&rendered);
        prop_assert!(reparsed.is_ok(), "render produced invalid JSON: {rendered:?}");
        prop_assert_eq!(reparsed.unwrap(), v);
    }

    #[test]
    fn json_parser_never_panics_on_arbitrary_text(s in raw_string()) {
        let _ = Json::parse(&s);
    }

    #[test]
    fn journal_recovery_replays_an_in_order_subset_under_corruption(
        payloads in prop::collection::vec("[a-z0-9 ]{0,16}", 1..10),
        corruptions in prop::collection::vec((any::<u64>(), 0u8..3), 0..6),
    ) {
        let path = std::env::temp_dir().join(format!(
            "gcln-proptest-journal-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Write uniquely-identified records through the real append
        // path, so the file carries genuine v2 frames.
        let originals: Vec<String> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| format!(r#"{{"type":"job","id":"job-{i}","p":{}}}"#, json_string(p)))
            .collect();
        {
            let journal = Journal::open(&path).unwrap();
            for record in &originals {
                journal.append(record).unwrap();
            }
        }
        // Corrupt it: arbitrary truncations, bit flips, and torn
        // (newline-less) garbage suffixes, in arbitrary order.
        for (roll, kind) in corruptions {
            let mut bytes = std::fs::read(&path).unwrap();
            match kind {
                0 => {
                    let cut = (roll as usize) % (bytes.len() + 1);
                    bytes.truncate(cut);
                }
                1 if !bytes.is_empty() => {
                    let at = (roll as usize) % bytes.len();
                    bytes[at] ^= 1 << ((roll >> 48) % 8);
                }
                _ => {
                    let torn = format!("J2 {} deadbeef {{\"type\":\"tor", roll % 100);
                    bytes.extend_from_slice(&torn.as_bytes()[..(roll as usize % torn.len()) + 1]);
                }
            }
            std::fs::write(&path, &bytes).unwrap();
        }
        // Recovery must never panic or error, and every replayed record
        // is byte-for-byte one of the originals (the CRC admits no
        // mutants), in file order.
        let journal = Journal::open(&path).unwrap();
        let replayed_indices: Vec<usize> = journal
            .replayed()
            .iter()
            .map(|v| {
                let rendered = v.render();
                originals
                    .iter()
                    .position(|o| {
                        Json::parse(o).unwrap().render() == rendered
                    })
                    .expect("replayed record must be an original")
            })
            .collect();
        for pair in replayed_indices.windows(2) {
            prop_assert!(pair[0] < pair[1], "replay out of order: {replayed_indices:?}");
        }
        // Whatever the repair rewrote must reopen with zero losses.
        let reopened = Journal::open(&path).unwrap();
        prop_assert_eq!(reopened.replayed().len(), replayed_indices.len());
        prop_assert_eq!(reopened.skipped_lines(), 0);
        prop_assert!(!reopened.recovery().repaired);
        let _ = std::fs::remove_file(&path);
    }
}

/// Arbitrary JSON values: scalars at the leaves, arrays/objects up to a
/// small recursion depth.
fn arb_json() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1.0e9..1.0e9f64).prop_map(Json::Num),
        raw_string().prop_map(Json::Str),
    ]
    .boxed();
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            prop::collection::vec((raw_string(), inner), 0..4).prop_map(Json::Obj),
        ]
    })
}
