//! End-to-end tests of the HTTP batch service: a real server on an
//! ephemeral port, driven over real sockets by [`gcln_serve::client`].
//!
//! The determinism-sensitive assertions compare *parsed* event objects
//! with the wall-clock `ms` members removed — everything else in the
//! stream (ordering, stages, attempts, formulas, counterexamples) must
//! be bit-identical between an HTTP submission and a direct
//! [`Engine`] run.

use gcln_serve::client::{request, ClientResponse};
use gcln_serve::json::Json;
use gcln_serve::{start, ServeConfig, ServerHandle};
use gcln_engine::{Engine, Job, PipelineConfig, ProblemSpec};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A ps2 variant absent from the registries (renamed variables, shifted
/// precondition). Ground truth: `2*acc == j^2 + j`.
const PS2VAR: &str = "program ps2var;\n\
    inputs m;\n\
    pre m >= 2;\n\
    post 2 * acc == j * j + j;\n\
    acc = 0; j = 0;\n\
    while (j < m) { j = j + 1; acc = acc + j; }\n";

/// Generous bound for engine work: debug builds run the pipeline an
/// order of magnitude slower than release.
const JOB_TIMEOUT: Duration = Duration::from_secs(300);

fn serve(workers: usize, queue_cap: usize, journal: Option<PathBuf>) -> ServerHandle {
    start(ServeConfig { workers, queue_cap, journal, ..ServeConfig::default() })
        .expect("server starts")
}

fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    request(addr, "GET", path, None).expect("GET succeeds")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> ClientResponse {
    request(addr, "POST", path, Some(body)).expect("POST succeeds")
}

/// Submits a job body and returns its id.
fn submit(addr: SocketAddr, body: &str) -> String {
    let resp = post(addr, "/jobs", body);
    assert_eq!(resp.status, 202, "submit failed: {}", resp.body);
    resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string()
}

/// Polls `GET /jobs/{id}` until `status == "done"`.
fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + JOB_TIMEOUT;
    loop {
        let resp = get(addr, &format!("/jobs/{id}"));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let job = resp.json().unwrap();
        if job.get("status").and_then(Json::as_str) == Some("done") {
            return job;
        }
        assert!(Instant::now() < deadline, "job {id} never completed: {}", resp.body);
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls `GET /stats` until `cond` holds, returning the stats object.
fn poll_stats(addr: SocketAddr, what: &str, cond: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + JOB_TIMEOUT;
    loop {
        let stats = get(addr, "/stats").json().unwrap();
        if cond(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "stats never reached `{what}`: {}", stats.render());
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The job's event stream as parsed objects with the nondeterministic
/// wall-clock `ms` members removed.
fn served_events(job: &Json) -> Vec<Json> {
    job.get("events")
        .and_then(Json::as_array)
        .expect("events array")
        .iter()
        .cloned()
        .map(strip_ms)
        .collect()
}

fn strip_ms(v: Json) -> Json {
    match v {
        Json::Obj(members) => {
            Json::Obj(members.into_iter().filter(|(k, _)| k != "ms").collect())
        }
        other => other,
    }
}

/// Formulas learned per loop, as `(loop, formula)` pairs.
fn served_invariants(job: &Json) -> Vec<(u64, String)> {
    job.get("invariants")
        .and_then(Json::as_array)
        .expect("invariants array")
        .iter()
        .map(|inv| {
            (
                inv.get("loop").and_then(Json::as_u64).unwrap(),
                inv.get("formula").and_then(Json::as_str).unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn e2e_round_trip_matches_direct_engine_run() {
    let handle = serve(2, 8, None);
    let addr = handle.local_addr();

    assert_eq!(get(addr, "/healthz").status, 200);

    let id = submit(addr, &format!(r#"{{"source":{},"fast":true}}"#, src_json()));
    assert_eq!(id, "job-1");
    let job = poll_done(addr, &id);
    assert_eq!(job.get("valid").and_then(Json::as_bool), Some(true));
    assert!(job.get("stopped").unwrap().is_null());

    // The same spec and config through the engine directly: the learned
    // invariant must be identical and the event stream bit-for-bit
    // equal modulo `ms` timings.
    let spec = ProblemSpec::from_source_str("fallback-unused", PS2VAR).unwrap();
    let names = spec.problem.extended_names();
    let outcome =
        Engine::new().run(&Job::new(spec).with_config(PipelineConfig::fast()));
    assert!(outcome.valid, "direct run must be checker-valid");
    assert!(outcome.report.is_valid(), "checker report must accept");

    let direct_events: Vec<Json> = outcome
        .events
        .iter()
        .map(|e| strip_ms(Json::parse(&e.to_json()).expect("event line parses as JSON")))
        .collect();
    assert_eq!(served_events(&job), direct_events, "served event stream diverged");

    let direct_invariants: Vec<(u64, String)> = outcome
        .loops
        .iter()
        .map(|li| (li.loop_id as u64, li.formula.display(&names).to_string()))
        .collect();
    assert_eq!(served_invariants(&job), direct_invariants);
    // The served formula is the one the (real) checker validated above.
    assert!(served_invariants(&job)[0].1.contains("=="), "expected an equality invariant");

    handle.shutdown();
}

#[test]
fn repeat_submission_hits_spec_and_trace_caches() {
    let handle = serve(1, 8, None);
    let addr = handle.local_addr();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());

    let first = poll_done(addr, &submit(addr, &body));
    let second = poll_done(addr, &submit(addr, &body));

    // Identical results, straight from the caches.
    assert_eq!(served_events(&first), served_events(&second));
    assert_eq!(served_invariants(&first), served_invariants(&second));
    assert_eq!(
        first.get("source_hash").and_then(Json::as_str),
        second.get("source_hash").and_then(Json::as_str)
    );

    let stats = get(addr, "/stats").json().unwrap();
    let cache_stat = |cache: &str, field: &str| {
        stats.get(cache).and_then(|c| c.get(field)).and_then(Json::as_u64).unwrap()
    };
    assert_eq!(cache_stat("spec_cache", "misses"), 1, "stats: {}", stats.render());
    assert_eq!(cache_stat("spec_cache", "hits"), 1, "stats: {}", stats.render());
    assert_eq!(cache_stat("spec_cache", "entries"), 1);
    assert_eq!(cache_stat("trace_cache", "misses"), 1, "stats: {}", stats.render());
    assert_eq!(cache_stat("trace_cache", "hits"), 1, "stats: {}", stats.render());

    handle.shutdown();
}

#[test]
fn concurrent_submissions_complete_deterministically() {
    let handle = serve(2, 16, None);
    let addr = handle.local_addr();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());

    // Race N submissions through a 2-worker pool.
    let ids: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..6).map(|_| scope.spawn(|| submit(addr, &body))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(ids.len(), 6);
    let mut unique = ids.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), 6, "ids must be distinct: {ids:?}");

    let jobs: Vec<Json> = ids.iter().map(|id| poll_done(addr, id)).collect();
    let reference_events = served_events(&jobs[0]);
    let reference_invariants = served_invariants(&jobs[0]);
    for job in &jobs {
        assert_eq!(job.get("valid").and_then(Json::as_bool), Some(true));
        assert_eq!(served_events(job), reference_events, "nondeterministic event stream");
        assert_eq!(served_invariants(job), reference_invariants);
    }
    handle.shutdown();
}

#[test]
fn queue_full_returns_503_with_retry_after() {
    let handle = serve(1, 1, None);
    let addr = handle.local_addr();
    // `max_degree: 4` stretches training to a fat window (hundreds of
    // ms in release, seconds in debug) so the worker stays busy while
    // we fill and overflow the queue.
    let slow = format!(r#"{{"source":{},"fast":true,"max_degree":4}}"#, src_json());

    let first = submit(addr, &slow);
    poll_stats(addr, "worker busy", |s| {
        s.get("busy_workers").and_then(Json::as_u64) == Some(1)
            && s.get("queue_depth").and_then(Json::as_u64) == Some(0)
    });
    let second = submit(addr, &slow);
    poll_stats(addr, "queue full", |s| {
        s.get("queue_depth").and_then(Json::as_u64) == Some(1)
    });

    let rejected = post(addr, "/jobs", &slow);
    assert_eq!(rejected.status, 503, "expected backpressure: {}", rejected.body);
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert!(rejected.body.contains("queue is full"), "{}", rejected.body);

    // Drain quickly: cancel both, then wait for completion.
    for id in [&first, &second] {
        let resp = request(addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        poll_done(addr, id);
    }
    handle.shutdown();
}

#[test]
fn delete_mid_train_yields_cancelled_partial_outcome() {
    let handle = serve(1, 4, None);
    let addr = handle.local_addr();
    let slow = format!(r#"{{"source":{},"fast":true,"max_degree":4}}"#, src_json());

    // Wait until a job's Train stage has started (and not yet finished)
    // and cancel inside that window. The window is hundreds of ms wide,
    // but a brutally contended machine could still blow past it — in
    // that case retry with a fresh submission rather than flaking.
    let mut caught = None;
    for _attempt in 0..3 {
        let id = submit(addr, &slow);
        let deadline = Instant::now() + JOB_TIMEOUT;
        loop {
            let job = get(addr, &format!("/jobs/{id}")).json().unwrap();
            let events = served_events(&job);
            let in_stage = |kind: &str| {
                events.iter().any(|e| {
                    e.get("event").and_then(Json::as_str) == Some(kind)
                        && e.get("stage").and_then(Json::as_str) == Some("train")
                })
            };
            if in_stage("stage_finished")
                || job.get("status").and_then(Json::as_str) == Some("done")
            {
                break; // window missed; retry with a fresh job
            }
            if in_stage("stage_started") {
                caught = Some(id.clone());
                break;
            }
            assert!(Instant::now() < deadline, "train never started");
            std::thread::sleep(Duration::from_millis(2));
        }
        if caught.is_some() {
            break;
        }
    }
    let id = caught.expect("could not catch any job mid-train in 3 attempts");
    let resp = request(addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains(r#""cancelled":true"#), "{}", resp.body);

    let job = poll_done(addr, &id);
    assert_eq!(job.get("stopped").and_then(Json::as_str), Some("cancelled"));
    assert_eq!(job.get("valid").and_then(Json::as_bool), Some(false));

    // Partial outcome with the event log intact: job_started first,
    // a job_stopped with reason cancelled, job_finished last, and the
    // stream is still there after cancellation.
    let events = served_events(&job);
    let kind = |e: &Json| e.get("event").and_then(Json::as_str).unwrap_or("?").to_string();
    assert_eq!(kind(&events[0]), "job_started");
    assert_eq!(kind(events.last().unwrap()), "job_finished");
    assert!(
        events.iter().any(|e| kind(e) == "job_stopped"
            && e.get("reason").and_then(Json::as_str) == Some("cancelled")),
        "missing job_stopped: {:?}",
        events.iter().map(|e| e.render()).collect::<Vec<_>>()
    );
    handle.shutdown();
}

#[test]
fn journal_replay_serves_completed_jobs_across_restart() {
    let journal = temp_journal("replay.jsonl");
    let _ = std::fs::remove_file(&journal);

    // First server lifetime: run one job to completion.
    let handle = serve(1, 4, Some(journal.clone()));
    let addr = handle.local_addr();
    let id = submit(addr, &format!(r#"{{"source":{},"fast":true}}"#, src_json()));
    let before = poll_done(addr, &id);
    assert_eq!(before.get("valid").and_then(Json::as_bool), Some(true));
    handle.shutdown();

    // Second lifetime: the completed job is served from the journal —
    // same id, same result, same events — without re-running inference.
    let handle = serve(1, 4, Some(journal.clone()));
    let addr = handle.local_addr();
    let resp = get(addr, &format!("/jobs/{id}"));
    assert_eq!(resp.status, 200, "replayed job missing: {}", resp.body);
    let after = resp.json().unwrap();
    assert_eq!(after, before, "replayed record diverged from the original");

    let stats = get(addr, "/stats").json().unwrap();
    let replayed = stats
        .get("journal")
        .and_then(|j| j.get("jobs_replayed"))
        .and_then(Json::as_u64);
    assert_eq!(replayed, Some(1), "stats: {}", stats.render());

    // New submissions get fresh ids past the replayed ones and are
    // appended to the same journal.
    let id2 = submit(addr, &format!(r#"{{"source":{},"fast":true}}"#, src_json()));
    assert_ne!(id2, id);
    poll_done(addr, &id2);
    handle.shutdown();

    // Third lifetime sees both.
    let handle = serve(1, 4, Some(journal.clone()));
    let addr = handle.local_addr();
    assert_eq!(get(addr, &format!("/jobs/{id}")).status, 200);
    assert_eq!(get(addr, &format!("/jobs/{id2}")).status, 200);
    handle.shutdown();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn api_surface_rejects_malformed_traffic() {
    let handle = serve(1, 4, None);
    let addr = handle.local_addr();

    // Unknown resources and wrong methods.
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/jobs/job-999").status, 404);
    assert_eq!(get(addr, "/jobs/weird-id").status, 404);
    let resp = get(addr, "/jobs");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));
    assert_eq!(post(addr, "/healthz", "").status, 405);

    // Malformed bodies are 400 with a diagnostic, never a crash.
    for (body, needle) in [
        ("", "not valid JSON"),
        ("[]", "must be a JSON object"),
        ("{\"nope\":1}", "unknown key"),
        ("{}", "missing required string field"),
        (r#"{"source":"while (("}"#, "does not parse"),
        (r#"{"source":"inputs n; x = n;","deadline_secs":-1}"#, "deadline_secs"),
        (r#"{"source":"inputs n; x = n;","step_budget":1.5}"#, "step_budget"),
        (r#"{"source":"inputs n; x = n;","fast":"yes"}"#, "fast"),
    ] {
        let resp = post(addr, "/jobs", body);
        assert_eq!(resp.status, 400, "{body} -> {}", resp.body);
        assert!(resp.body.contains(needle), "{body} -> {}", resp.body);
    }

    // The server is still healthy after all of that.
    assert_eq!(get(addr, "/healthz").status, 200);
    handle.shutdown();
}

#[test]
fn deadline_and_budget_limits_flow_through_the_api() {
    let handle = serve(1, 4, None);
    let addr = handle.local_addr();

    // A zero deadline stops before training; the partial outcome is
    // still a complete API object.
    let id = submit(
        addr,
        &format!(r#"{{"source":{},"fast":true,"deadline_secs":0}}"#, src_json()),
    );
    let job = poll_done(addr, &id);
    assert_eq!(job.get("stopped").and_then(Json::as_str), Some("deadline_exceeded"));
    assert_eq!(job.get("valid").and_then(Json::as_bool), Some(false));

    // A one-step budget runs exactly one training attempt.
    let id = submit(
        addr,
        &format!(r#"{{"source":{},"fast":true,"step_budget":1}}"#, src_json()),
    );
    let job = poll_done(addr, &id);
    assert_eq!(job.get("stopped").and_then(Json::as_str), Some("budget_exhausted"));
    let ran: Vec<bool> = served_events(&job)
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("attempt_result"))
        .map(|e| !e.get("skipped").and_then(Json::as_bool).unwrap())
        .collect();
    assert_eq!(ran, vec![true, false], "budget must grant exactly one attempt");
    handle.shutdown();
}

/// The shared source, JSON-encoded for request bodies.
fn src_json() -> String {
    gcln_engine::events::json_string(PS2VAR)
}

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcln-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}
