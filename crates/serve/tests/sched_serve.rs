//! E2E tests for the scheduler-era service features: per-client rate
//! limiting (429 + Retry-After, allowance → priority), the Prometheus
//! `/metrics` endpoint, and journal compaction with restart replay.

use gcln_serve::client::{request, request_with_headers, ClientResponse};
use gcln_serve::{start, Json, RateLimit, ServeConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const JOB_TIMEOUT: Duration = Duration::from_secs(120);

fn src_json() -> String {
    // Tiny degree-2 single-loop program; solves in well under a second
    // with `fast`.
    gcln_engine::events::json_string(
        "program tiny;\ninputs n;\npre n >= 0;\npost 2 * x == n * n + n;\n\
         x = 0; i = 0;\nwhile (i < n) { i = i + 1; x = x + i; }",
    )
}

fn submit_as(addr: SocketAddr, client: Option<&str>, body: &str) -> ClientResponse {
    let headers: Vec<(&str, &str)> = client.map(|c| ("x-client-id", c)).into_iter().collect();
    request_with_headers(addr, "POST", "/jobs", &headers, Some(body)).expect("submit")
}

fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + JOB_TIMEOUT;
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{id}"), None).expect("poll");
        let job = resp.json().expect("job json");
        if job.get("status").and_then(Json::as_str) == Some("done") {
            return job;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcln-sched-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn rate_limit_answers_429_and_wires_allowance_into_priority() {
    let handle = start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        // 0.1 tokens/sec: no measurable refill within the test window.
        rate_limit: Some(RateLimit { rate_per_sec: 0.1, burst: 2.0 }),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());

    // Client A burns its burst of 2; the 202 bodies expose the
    // remaining allowance as the admitted job's scheduler priority.
    let first = submit_as(addr, Some("client-a"), &body);
    assert_eq!(first.status, 202, "{}", first.body);
    assert!(first.body.contains(r#""priority":1"#), "{}", first.body);
    let second = submit_as(addr, Some("client-a"), &body);
    assert_eq!(second.status, 202, "{}", second.body);
    assert!(second.body.contains(r#""priority":0"#), "{}", second.body);

    let rejected = submit_as(addr, Some("client-a"), &body);
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    let retry_after: u64 =
        rejected.header("retry-after").expect("retry-after header").parse().unwrap();
    assert!(retry_after >= 1, "retry-after must be at least a second");
    assert!(rejected.body.contains("rate limit"), "{}", rejected.body);

    // A different client id is unaffected; so is an id-less request
    // (keyed by peer IP — a distinct bucket from the named clients).
    let other = submit_as(addr, Some("client-b"), &body);
    assert_eq!(other.status, 202, "{}", other.body);
    let anon = submit_as(addr, None, &body);
    assert_eq!(anon.status, 202, "{}", anon.body);

    // The stats counter saw exactly one rejection.
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    assert_eq!(stats.get("rate_limited").and_then(Json::as_u64), Some(1));

    // Drain before shutdown so the journal-less server exits quickly.
    for resp in [&first, &second, &other, &anon] {
        let id = resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
        poll_done(addr, &id);
    }
    handle.shutdown();
}

#[test]
fn metrics_endpoint_exposes_stage_histograms_and_cache_ratios() {
    let handle = start(ServeConfig { workers: 2, ..ServeConfig::default() }).unwrap();
    let addr = handle.local_addr();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());
    let resp = submit_as(addr, None, &body);
    assert_eq!(resp.status, 202, "{}", resp.body);
    let id = resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
    poll_done(addr, &id);

    let metrics = request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.header("content-type"), Some("text/plain; version=0.0.4"));
    let text = &metrics.body;
    // Stage latency histograms, sourced from scheduler task timings.
    for kind in ["trace", "train", "extract", "check"] {
        assert!(
            text.contains(&format!("gcln_sched_task_duration_seconds_count{{kind=\"{kind}\"}}")),
            "missing task histogram for {kind}:\n{text}"
        );
    }
    assert!(text.contains("gcln_sched_queue_wait_seconds_bucket"));
    assert!(text.contains("gcln_sched_worker_utilization "));
    assert!(text.contains("gcln_serve_cache_requests_total{cache=\"spec\",result=\"miss\"} 1"));
    assert!(text.contains("gcln_serve_cache_requests_total{cache=\"trace\",result=\"miss\"} 1"));
    assert!(text.contains("gcln_sched_jobs_total{state=\"completed\"} 1"));
    // Histogram sanity: the train count is a positive integer sample.
    let train_count = text
        .lines()
        .find(|l| l.starts_with("gcln_sched_task_duration_seconds_count{kind=\"train\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("train count sample");
    assert!(train_count >= 1, "at least one training attempt ran");
    handle.shutdown();
}

#[test]
fn journal_compaction_bounds_the_file_and_replay_survives_restart() {
    let path = temp_path("compact.jsonl");
    let _ = std::fs::remove_file(&path);
    let cfg = || ServeConfig {
        workers: 2,
        journal: Some(path.clone()),
        // Retain only 2 completed records; compact on every append.
        max_retained_jobs: 2,
        journal_compact_bytes: Some(1),
        ..ServeConfig::default()
    };

    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());
    let ids: Vec<String> = {
        let handle = start(cfg()).unwrap();
        let addr = handle.local_addr();
        let ids: Vec<String> = (0..5)
            .map(|_| {
                let resp = submit_as(addr, None, &body);
                assert_eq!(resp.status, 202, "{}", resp.body);
                let id =
                    resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
                poll_done(addr, &id);
                id
            })
            .collect();
        let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
        let journal = stats.get("journal").expect("journal stats");
        assert!(
            journal.get("compactions").and_then(Json::as_u64).unwrap_or(0) >= 1,
            "compaction must have run: {}",
            stats.render()
        );
        handle.shutdown();
        ids
    };

    // The journal on disk holds at most the retained window.
    let contents = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = contents.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(lines.len() <= 2, "compacted journal must hold <= 2 records, got {}", lines.len());

    // Restart: the retained jobs replay, the compacted-away ones 404.
    let handle = start(cfg()).unwrap();
    let addr = handle.local_addr();
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let replayed = stats
        .get("journal")
        .and_then(|j| j.get("jobs_replayed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(replayed, lines.len() as u64, "stats: {}", stats.render());
    let last = request(addr, "GET", &format!("/jobs/{}", ids[4]), None).unwrap();
    assert_eq!(last.status, 200, "most recent job must replay");
    assert!(last.body.contains(r#""status":"done""#));
    let first = request(addr, "GET", &format!("/jobs/{}", ids[0]), None).unwrap();
    assert_eq!(first.status, 404, "compacted-away job must be gone");

    // New submissions mint fresh ids past the replayed ones.
    let resp = submit_as(addr, None, &body);
    assert_eq!(resp.status, 202);
    let new_id = resp.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
    assert!(!ids.contains(&new_id), "id {new_id} must be fresh");
    poll_done(addr, &new_id);
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}
