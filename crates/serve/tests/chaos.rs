//! In-process chaos tests: the service under a deterministic
//! [`gcln_serve::Faults`] plan. Each test arms one fault site and
//! asserts the documented containment boundary — a panicking stage task
//! fails only its own job, repeated panics trip the spec-hash
//! quarantine breaker, a failed journal append rolls the admission
//! back, and admitted-but-incomplete journal records are resubmitted
//! (and recomputed bit-identically) after a restart.
//!
//! The out-of-process kill -9 variant lives in
//! `scripts/chaos_smoke.sh`.

use gcln_serve::client::request;
use gcln_serve::{start, Faults, Journal, Json, ServeConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const JOB_TIMEOUT: Duration = Duration::from_secs(120);

fn src_json() -> String {
    gcln_engine::events::json_string(
        "program tiny;\ninputs n;\npre n >= 0;\npost 2 * x == n * n + n;\n\
         x = 0; i = 0;\nwhile (i < n) { i = i + 1; x = x + i; }",
    )
}

fn submit(addr: SocketAddr, body: &str) -> Json {
    let resp = request(addr, "POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    resp.json().expect("submit json")
}

fn poll_done(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + JOB_TIMEOUT;
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{id}"), None).expect("poll");
        let job = resp.json().expect("job json");
        if job.get("status").and_then(Json::as_str) == Some("done") {
            return job;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn formulas(job: &Json) -> Vec<String> {
    job.get("invariants")
        .and_then(Json::as_array)
        .map(|invs| {
            invs.iter()
                .filter_map(|inv| inv.get("formula").and_then(Json::as_str))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcln-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn a_panicking_task_fails_only_its_own_job() {
    // Reference: the same source on a fault-free server.
    let clean = start(ServeConfig { workers: 2, ..ServeConfig::default() }).unwrap();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());
    let id = submit(clean.local_addr(), &body)
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let reference = poll_done(clean.local_addr(), &id);
    clean.shutdown();
    assert_eq!(reference.get("valid").and_then(Json::as_bool), Some(true));
    let reference_formulas = formulas(&reference);
    assert!(!reference_formulas.is_empty());

    // Chaos: the first 3 stage-task executions panic — exactly one
    // attempt plus the default 2 retries, so the first job fails
    // permanently and exhausts the fire budget.
    let handle = start(ServeConfig {
        workers: 2,
        faults: Faults::parse("seed=1,sched.task_panic=1.0:3").unwrap(),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let doomed = submit(addr, &body).get("id").and_then(Json::as_str).unwrap().to_string();
    let failed = poll_done(addr, &doomed);
    assert_eq!(failed.get("valid").and_then(Json::as_bool), Some(false));
    assert_eq!(
        failed.get("stopped").and_then(Json::as_str),
        Some("task_panicked"),
        "{}",
        failed.render()
    );

    // The neighbor, submitted into the same (now-exhausted-fault) pool,
    // is untouched: byte-identical invariants to the clean run.
    let neighbor = submit(addr, &body).get("id").and_then(Json::as_str).unwrap().to_string();
    let ok = poll_done(addr, &neighbor);
    assert_eq!(ok.get("valid").and_then(Json::as_bool), Some(true));
    assert_eq!(formulas(&ok), reference_formulas);

    // The fault-tolerance counters saw the panics (3 fires = 2 retries
    // then 1 permanent failure).
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let sched = stats.get("scheduler").expect("scheduler stats");
    assert_eq!(sched.get("tasks_retried").and_then(Json::as_u64), Some(2));
    assert_eq!(sched.get("tasks_panicked").and_then(Json::as_u64), Some(1));
    handle.shutdown();
}

#[test]
fn repeated_panics_on_one_spec_trip_the_quarantine_breaker() {
    // Every stage task panics, forever. Two jobs on the same source
    // burn through retries and fail as task_panicked; the third hits
    // the spec-hash circuit breaker and fails fast as quarantined
    // without ever reaching a worker.
    let handle = start(ServeConfig {
        workers: 2,
        faults: Faults::parse("seed=3,sched.task_panic=1.0").unwrap(),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());
    for expected in ["task_panicked", "task_panicked", "quarantined"] {
        let id = submit(addr, &body).get("id").and_then(Json::as_str).unwrap().to_string();
        let job = poll_done(addr, &id);
        assert_eq!(
            job.get("stopped").and_then(Json::as_str),
            Some(expected),
            "{}",
            job.render()
        );
        assert_eq!(job.get("valid").and_then(Json::as_bool), Some(false));
    }
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let sched = stats.get("scheduler").expect("scheduler stats");
    assert_eq!(sched.get("jobs_quarantined").and_then(Json::as_u64), Some(1));
    // The breaker is keyed by spec hash: a *different* source is
    // served normally (the fault plan still panics its tasks, but it
    // is admitted and scheduled rather than failed fast).
    let other = gcln_engine::events::json_string(
        "inputs n; pre n >= 0; post x == 3 * n;\n\
         x = 0; i = 0;\nwhile (i < n) { i = i + 1; x = x + 3; }",
    );
    let id = submit(addr, &format!(r#"{{"source":{other},"fast":true}}"#))
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let job = poll_done(addr, &id);
    assert_eq!(job.get("stopped").and_then(Json::as_str), Some("task_panicked"));
    handle.shutdown();
}

#[test]
fn admitted_but_incomplete_jobs_are_resubmitted_on_restart() {
    let path = temp_path("resubmit.jsonl");
    let _ = std::fs::remove_file(&path);
    // Handcraft the journal a crashed server would leave behind: an
    // admission record with no matching completion.
    {
        let journal = Journal::open(&path).unwrap();
        journal
            .append(&format!(
                r#"{{"type":"admitted","id":"job-1","source":{},"fast":true}}"#,
                src_json()
            ))
            .unwrap();
    }
    let handle = start(ServeConfig {
        workers: 2,
        journal: Some(path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let journal_stats = stats.get("journal").expect("journal stats");
    assert_eq!(
        journal_stats.get("jobs_resubmitted").and_then(Json::as_u64),
        Some(1),
        "{}",
        stats.render()
    );
    // The orphaned admission runs to completion under its original id;
    // inference is deterministic, so this IS the result the crashed
    // process would have produced.
    let job = poll_done(addr, "job-1");
    assert_eq!(job.get("valid").and_then(Json::as_bool), Some(true));
    assert!(!formulas(&job).is_empty());
    handle.shutdown();

    // The completion journaled; a second restart replays it as done
    // instead of resubmitting.
    let handle = start(ServeConfig {
        workers: 2,
        journal: Some(path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let journal_stats = stats.get("journal").expect("journal stats");
    assert_eq!(journal_stats.get("jobs_resubmitted").and_then(Json::as_u64), Some(0));
    assert_eq!(journal_stats.get("jobs_replayed").and_then(Json::as_u64), Some(1));
    let replayed = request(addr, "GET", "/jobs/job-1", None).unwrap();
    assert_eq!(replayed.status, 200);
    assert!(replayed.body.contains(r#""status":"done""#));
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_failed_journal_append_rolls_the_admission_back() {
    let path = temp_path("rollback.jsonl");
    let _ = std::fs::remove_file(&path);
    // The first journal append tears (crash mid-write); admission must
    // not be reported when the durable record is not.
    let handle = start(ServeConfig {
        workers: 2,
        journal: Some(path.clone()),
        faults: Faults::parse("seed=5,journal.torn_write=1.0:1").unwrap(),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let body = format!(r#"{{"source":{},"fast":true}}"#, src_json());
    let rejected = request(addr, "POST", "/jobs", Some(&body)).unwrap();
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    assert!(rejected.body.contains("not admitted"), "{}", rejected.body);

    // The fault budget is spent: the retry succeeds end-to-end.
    let id = submit(addr, &body).get("id").and_then(Json::as_str).unwrap().to_string();
    poll_done(addr, &id);
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let done = stats
        .get("jobs")
        .and_then(|j| j.get("done"))
        .and_then(Json::as_u64);
    assert_eq!(done, Some(1), "exactly one job was ever admitted: {}", stats.render());
    handle.shutdown();

    // Restart: the torn admission must not resurrect as a ghost job.
    let handle = start(ServeConfig {
        workers: 2,
        journal: Some(path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let stats = request(addr, "GET", "/stats", None).unwrap().json().unwrap();
    let journal_stats = stats.get("journal").expect("journal stats");
    assert_eq!(journal_stats.get("jobs_resubmitted").and_then(Json::as_u64), Some(0));
    let replayed = request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(replayed.status, 200, "the completed job replays");
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn connection_faults_reset_or_stall_without_wedging_the_server() {
    // Every other connection is reset at accept; the survivors are
    // stalled briefly. The server must keep answering on the
    // connections the plan lets through — no wedge, no corruption.
    let handle = start(ServeConfig {
        workers: 1,
        faults: Faults::parse("seed=9,serve.conn_reset=0.5,serve.conn_stall=0.5").unwrap(),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut answered = 0;
    for _ in 0..20 {
        if let Ok(resp) = request(addr, "GET", "/healthz", None) {
            assert_eq!(resp.status, 200);
            answered += 1;
        }
    }
    assert!(answered >= 3, "some connections must get through, saw {answered}/20");
    handle.shutdown();
}
