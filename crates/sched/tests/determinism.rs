//! The scheduler's headline guarantee, tested property-style: an N-job
//! batch produces **bit-identical per-job outcomes and event payloads**
//! (wall-clock `ms` fields excluded) at every worker count and under
//! randomized priority assignments — and cancelling one job mid-batch
//! leaves every neighbor untouched.
//!
//! The priority assignments are drawn from a seeded RNG (a bounded
//! property sweep rather than a fixed example); the reference is always
//! a solo `Engine::run` of the identical job.

use gcln_engine::{Engine, Event, GclnConfig, Job, PipelineConfig, ProblemSpec, StopReason};
use gcln_sched::{JobEvent, SchedConfig, Scheduler, SubmitOptions};
use rand::{Rng, SeedableRng, StdRng};
use std::sync::{Arc, Mutex};

/// The batch: five jobs mixing problems, epoch budgets, attempt counts,
/// and limits (one budget-limited job exercises the partial-grant
/// path — its event stream includes budget-skipped attempts).
fn batch() -> Vec<Job> {
    let cfg = |epochs: usize, attempts: usize| PipelineConfig {
        gcln: GclnConfig { max_epochs: epochs, ..GclnConfig::default() },
        max_inputs: 30,
        max_attempts: attempts,
        cegis_rounds: 1,
        ..PipelineConfig::default()
    };
    let job = |name: &str, config: PipelineConfig| {
        Job::new(ProblemSpec::from_registry(name).expect("registry problem")).with_config(config)
    };
    vec![
        job("ps2", cfg(400, 2)),
        job("ps3", cfg(700, 3)),
        job("sqrt1", cfg(400, 2)),
        job("cohencu", cfg(300, 1)),
        job("ps2", cfg(600, 4)).with_step_budget(2),
    ]
}

fn strip_ms(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let j = e.to_json();
            match j.find("\"ms\":") {
                Some(i) => j[..i].to_string(),
                None => j,
            }
        })
        .collect()
}

#[test]
fn batch_outcomes_and_event_streams_are_bit_identical_at_any_worker_count() {
    let engine = Engine::new();
    let reference: Vec<_> = batch().iter().map(|job| engine.run(job)).collect();

    let mut rng = StdRng::seed_from_u64(0x5EED);
    for workers in [1usize, 2, 8] {
        // Fresh random priorities per pool width: determinism must hold
        // under priority-driven reordering too.
        let priorities: Vec<i32> = batch().iter().map(|_| rng.gen_range(-3..=3)).collect();
        let sched = Scheduler::new(SchedConfig::with_workers(workers));
        let captured: Vec<Arc<Mutex<Vec<JobEvent>>>> =
            batch().iter().map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        let tickets: Vec<_> = batch()
            .into_iter()
            .zip(&priorities)
            .zip(&captured)
            .map(|((job, &priority), cap)| {
                let cap = cap.clone();
                sched.submit_with(
                    job,
                    SubmitOptions::priority(priority),
                    Some(Box::new(move |ev: &JobEvent| {
                        cap.lock().unwrap().push(ev.clone());
                    })),
                    None,
                )
            })
            .collect();
        let outcomes: Vec<_> = tickets.iter().map(|t| t.wait()).collect();
        sched.shutdown();

        for (i, (outcome, solo)) in outcomes.iter().zip(&reference).enumerate() {
            let tag = format!("workers={workers} prio={} job#{i}", priorities[i]);
            assert_eq!(outcome.valid, solo.valid, "{tag}");
            assert_eq!(outcome.stopped, solo.stopped, "{tag}");
            assert_eq!(outcome.cegis_rounds_used, solo.cegis_rounds_used, "{tag}");
            for (a, b) in outcome.loops.iter().zip(&solo.loops) {
                assert_eq!(a.formula, b.formula, "{tag}");
                assert_eq!(a.attempts, b.attempts, "{tag}");
                assert_eq!(a.used_fractional, b.used_fractional, "{tag}");
            }
            assert_eq!(
                strip_ms(&outcome.events),
                strip_ms(&solo.events),
                "{tag}: event stream diverged from solo Engine::run"
            );
            // The sink saw the same stream, enveloped with dense per-job
            // sequence numbers (the reassembly contract).
            let seen = captured[i].lock().unwrap();
            assert_eq!(seen.len(), solo.events.len(), "{tag}");
            for (seq, ev) in seen.iter().enumerate() {
                assert_eq!(ev.seq, seq as u64, "{tag}: seq must be dense");
                assert_eq!(ev.job, tickets[i].id(), "{tag}");
            }
            let sink_payloads: Vec<Event> = seen.iter().map(|e| e.event.clone()).collect();
            assert_eq!(strip_ms(&sink_payloads), strip_ms(&solo.events), "{tag}");
        }
    }
}

#[test]
fn aggressive_aging_preserves_bit_identical_outcomes_at_any_worker_count() {
    // Aging only reorders *which* job a worker serves next; it must never
    // leak into job results. Interval 1 is the most aggressive setting —
    // every passed-over job climbs on every pop — and spread-out static
    // priorities maximize the reordering it causes.
    let engine = Engine::new();
    let reference: Vec<_> = batch().iter().map(|job| engine.run(job)).collect();

    for workers in [1usize, 2, 8] {
        let cfg = SchedConfig { aging_interval: Some(1), ..SchedConfig::with_workers(workers) };
        let sched = Scheduler::new(cfg);
        let tickets: Vec<_> = batch()
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let priority = (i as i32) * 2 - 4; // -4, -2, 0, 2, 4
                sched.submit_with(job, SubmitOptions::priority(priority), None, None)
            })
            .collect();
        let outcomes: Vec<_> = tickets.iter().map(|t| t.wait()).collect();
        sched.shutdown();

        for (i, (outcome, solo)) in outcomes.iter().zip(&reference).enumerate() {
            let tag = format!("aging=1 workers={workers} job#{i}");
            assert_eq!(outcome.valid, solo.valid, "{tag}");
            assert_eq!(outcome.stopped, solo.stopped, "{tag}");
            for (a, b) in outcome.loops.iter().zip(&solo.loops) {
                assert_eq!(a.formula, b.formula, "{tag}");
                assert_eq!(a.attempts, b.attempts, "{tag}");
            }
            assert_eq!(
                strip_ms(&outcome.events),
                strip_ms(&solo.events),
                "{tag}: aging perturbed the event stream"
            );
        }
    }
}

#[test]
fn cancelling_one_job_mid_batch_leaves_the_others_bit_identical() {
    let engine = Engine::new();
    let reference: Vec<_> = batch().iter().map(|job| engine.run(job)).collect();

    let sched = Scheduler::new(SchedConfig::with_workers(2));
    let jobs = batch();
    let victim_token = jobs[1].cancel_token();
    let tickets: Vec<_> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            if i == 1 {
                // Trip the cancel as soon as the victim's first Train
                // stage completes: mid-batch, mid-job.
                let token = victim_token.clone();
                sched.submit_with(
                    job,
                    SubmitOptions::default(),
                    Some(Box::new(move |ev: &JobEvent| {
                        if ev.event.to_json().contains(r#""stage":"train""#)
                            && ev.event.to_json().contains("stage_finished")
                        {
                            token.cancel();
                        }
                    })),
                    None,
                )
            } else {
                sched.submit(job)
            }
        })
        .collect();
    let outcomes: Vec<_> = tickets.iter().map(|t| t.wait()).collect();
    sched.shutdown();

    // The victim stopped cooperatively with a partial outcome.
    assert_eq!(outcomes[1].stopped, Some(StopReason::Cancelled));
    assert!(!outcomes[1].valid, "a cancelled job must not claim validity");
    assert!(outcomes[1]
        .events
        .iter()
        .any(|e| matches!(e, Event::JobStopped { reason: StopReason::Cancelled })));

    // Every neighbor is bit-identical to its solo run.
    for (i, (outcome, solo)) in outcomes.iter().zip(&reference).enumerate() {
        if i == 1 {
            continue;
        }
        assert_eq!(
            strip_ms(&outcome.events),
            strip_ms(&solo.events),
            "job#{i} was perturbed by the cancellation"
        );
        for (a, b) in outcome.loops.iter().zip(&solo.loops) {
            assert_eq!(a.formula, b.formula, "job#{i}");
        }
        assert_eq!(outcome.valid, solo.valid, "job#{i}");
    }
}
