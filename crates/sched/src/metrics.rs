//! Scheduler metrics: task latency histograms per stage kind, queue
//! wait, worker busy time, and job counters.
//!
//! The histograms use fixed second-scale bucket bounds so snapshots can
//! be rendered directly in Prometheus exposition format (`gcln-serve`'s
//! `GET /metrics` does exactly that — Prometheus histograms want
//! cumulative bucket counts, which [`HistogramSnapshot::cumulative`]
//! provides).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds, in seconds. The last implicit bucket
/// is `+Inf`.
pub const BUCKET_BOUNDS: [f64; 14] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket latency histogram.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; one per [`BUCKET_BOUNDS`]
    /// entry plus a final overflow (`+Inf`) bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values, seconds.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative counts per bound (Prometheus `le` semantics),
    /// including the final `+Inf` entry (== `count`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.counts
            .iter()
            .map(|c| {
                total += c;
                total
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct Histogram {
    counts: [u64; BUCKET_BOUNDS.len() + 1],
    sum: f64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, secs: f64) {
        let idx = BUCKET_BOUNDS.iter().position(|&b| secs <= b).unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
        self.sum += secs;
        self.count += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { counts: self.counts.to_vec(), sum: self.sum, count: self.count }
    }
}

/// Shared scheduler metrics. All methods are thread-safe; workers call
/// the `observe_*` family, consumers call [`Metrics::snapshot`].
#[derive(Debug)]
pub struct Metrics {
    started_at: Instant,
    workers: usize,
    busy_ns: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    tasks_executed: AtomicU64,
    tasks_retried: AtomicU64,
    tasks_panicked: AtomicU64,
    jobs_quarantined: AtomicU64,
    queue_wait: Mutex<Histogram>,
    /// Task execution latency per stage kind (label = `TaskKind::as_str`
    /// or `"whole"` for job-granularity submissions).
    tasks: Mutex<HashMap<&'static str, Histogram>>,
}

impl Metrics {
    pub(crate) fn new(workers: usize) -> Metrics {
        Metrics {
            started_at: Instant::now(),
            workers,
            busy_ns: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
            tasks_retried: AtomicU64::new(0),
            tasks_panicked: AtomicU64::new(0),
            jobs_quarantined: AtomicU64::new(0),
            queue_wait: Mutex::new(Histogram::default()),
            tasks: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn job_submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn job_completed(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn task_retried(&self) {
        self.tasks_retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn task_panicked(&self) {
        self.tasks_panicked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn job_quarantined(&self) {
        self.jobs_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_wait(&self, wait: Duration) {
        self.queue_wait.lock().unwrap().observe(wait.as_secs_f64());
    }

    pub(crate) fn observe_task(&self, kind: &'static str, took: Duration) {
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(took.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        self.tasks.lock().unwrap().entry(kind).or_default().observe(took.as_secs_f64());
    }

    /// A point-in-time copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut tasks: Vec<(String, HistogramSnapshot)> = self
            .tasks
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.to_string(), h.snapshot()))
            .collect();
        tasks.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            workers: self.workers,
            uptime: self.started_at.elapsed(),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_retried: self.tasks_retried.load(Ordering::Relaxed),
            tasks_panicked: self.tasks_panicked.load(Ordering::Relaxed),
            jobs_quarantined: self.jobs_quarantined.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.lock().unwrap().snapshot(),
            tasks,
        }
    }
}

/// Everything [`Metrics`] tracks, frozen at one instant.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Worker-pool width.
    pub workers: usize,
    /// Time since the scheduler started.
    pub uptime: Duration,
    /// Total task execution time across all workers.
    pub busy: Duration,
    /// Jobs ever submitted.
    pub jobs_submitted: u64,
    /// Jobs that produced an outcome.
    pub jobs_completed: u64,
    /// Tasks executed (all kinds, including whole-job runs).
    pub tasks_executed: u64,
    /// Stage tasks re-enqueued after a transient (injected) fault.
    pub tasks_retried: u64,
    /// Stage tasks that failed their job permanently by panicking
    /// (genuine panics, plus injected panics past the retry budget).
    pub tasks_panicked: u64,
    /// Jobs failed fast by the spec-hash circuit breaker.
    pub jobs_quarantined: u64,
    /// Time tasks spent in the ready queue before a worker picked them.
    pub queue_wait: HistogramSnapshot,
    /// Execution latency per task kind, sorted by kind label.
    pub tasks: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Fraction of the pool's total capacity spent executing tasks
    /// (`busy / (uptime × workers)`), clamped to `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let denom = self.uptime.as_secs_f64() * self.workers.max(1) as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_cumulative_counts() {
        let mut h = Histogram::default();
        h.observe(0.0001); // bucket 0 (<= 0.0005)
        h.observe(0.003); // <= 0.005
        h.observe(99.0); // +Inf overflow
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.counts.len(), BUCKET_BOUNDS.len() + 1);
        assert_eq!(snap.counts[0], 1);
        assert_eq!(snap.counts[BUCKET_BOUNDS.len()], 1);
        let cum = snap.cumulative();
        assert_eq!(*cum.last().unwrap(), 3);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "cumulative must be monotone");
    }

    #[test]
    fn utilization_is_bounded() {
        let m = Metrics::new(2);
        m.observe_task("train", Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(2));
        let snap = m.snapshot();
        assert!(snap.utilization() >= 0.0 && snap.utilization() <= 1.0);
        assert_eq!(snap.tasks_executed, 1);
        assert_eq!(snap.tasks[0].0, "train");
    }
}
