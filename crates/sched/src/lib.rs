//! # gcln-sched — the stage-graph scheduler
//!
//! One shared worker pool interleaving many inference jobs at *stage
//! task* granularity: while one job trains, its neighbors' trace,
//! check, and extraction tasks fill the idle workers. This is the
//! engine-level parallel suite scheduling the ROADMAP called for —
//! whole-job fan-out (one worker pinned per problem) leaves workers
//! idle whenever the workload mixes long trainings with short bursty
//! stages.
//!
//! ## Architecture
//!
//! Each submitted [`Job`] is unfolded into a
//! [`StagedJob`](gcln_engine::StagedJob) — the engine's stage-graph
//! state machine. The scheduler keeps one ready queue per job plus a
//! priority-ordered ring of jobs with ready tasks:
//!
//! ```text
//!   submit ─▶ StagedJob ─ advance() ─▶ [task, task, …] ─▶ per-job queue
//!                 ▲                                            │
//!                 │           ring: prio -1 ▶ (job A, job C)   │ pop (round-robin
//!                 │                 prio  0 ▶ (job B)          ▼  across jobs)
//!              complete() ◀────────── workers (shared pool) ───┘
//! ```
//!
//! Workers pop one task at a time, highest priority first and
//! round-robin across jobs within a priority, so no job monopolizes the
//! pool and short jobs flow past long ones. When a job's last
//! outstanding task completes, the completing worker advances the state
//! machine, which emits events and produces the next batch.
//!
//! ## Determinism
//!
//! Per-job results and event streams are **bit-identical to a solo
//! [`Engine::run`]** at any worker count, any priority assignment, and
//! any interleaving: tasks are pure, merges key on `(loop, attempt)`,
//! and each job's events are emitted serially by its own state machine.
//! Events are delivered as [`JobEvent`]s carrying a per-job sequence
//! number, so multiplexed streams reassemble deterministically.
//!
//! Cancel/deadline/budget checks stay cooperative at task boundaries,
//! exactly like the solo engine: a cancelled job drains its in-flight
//! tasks and completes with a partial outcome; other jobs are
//! unaffected.
//!
//! ## Fault tolerance
//!
//! Stage-task execution runs under `catch_unwind`: a panicking task
//! fails *only its own job*, which completes with a partial outcome
//! (`stopped: task_panicked`, events up to the panic intact) — the
//! ticket always resolves and neighbor jobs stay bit-identical.
//! Transient faults injected by a [`gcln_faults::Faults`] plan at the
//! `sched.task_panic` site are retried up to
//! [`SchedConfig::max_task_retries`] times per job on a deterministic
//! exponential backoff schedule (`retry_backoff × 2^attempt`, no
//! wall-clock randomness in the decision). A spec-hash-keyed circuit
//! breaker quarantines specs whose jobs died panicking
//! [`SchedConfig::quarantine_threshold`] times: further submissions
//! carrying that [`SubmitOptions::fault_key`] fail fast with
//! `stopped: quarantined` before any task runs.
//!
//! ## Priority aging
//!
//! Starvation guard: a job waiting in the ready ring has its effective
//! priority raised one level every [`SchedConfig::aging_interval`] task
//! pops it sits through without being served, so a stream of
//! high-priority submissions cannot park a low-priority job forever.
//! Aging is keyed to pop counts, not wall clock, and only reorders
//! *scheduling*; per-job outcomes remain bit-identical at any worker
//! count.

pub mod metrics;

use gcln_engine::staged::{Step, Task};
use gcln_engine::{
    CancelToken, CheckReport, Engine, Event, InferenceOutcome, Job, StagedJob, StopReason,
};
use gcln_faults::{site, Faults};
use metrics::{Metrics, MetricsSnapshot};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Fault-injection plan (disabled by default; see [`gcln_faults`]).
    pub faults: Faults,
    /// Transient-fault retries granted per job before the job fails
    /// with `task_panicked`. Only faults injected *before* a task's
    /// closure runs are retryable; a genuine panic consumes the task.
    pub max_task_retries: u32,
    /// Base of the deterministic retry backoff schedule: attempt `n`
    /// (1-based) sleeps `retry_backoff × 2^(n-1)`.
    pub retry_backoff: Duration,
    /// Pops a ring-resident job waits through before its effective
    /// priority rises one level. `None` disables aging.
    pub aging_interval: Option<u64>,
    /// Panicked-job count per spec hash at which the circuit breaker
    /// opens and further submissions with that fault key fail fast.
    pub quarantine_threshold: u32,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            workers: rayon::current_num_threads(),
            faults: Faults::disabled(),
            max_task_retries: 2,
            retry_backoff: Duration::from_millis(1),
            aging_interval: Some(64),
            quarantine_threshold: 2,
        }
    }
}

impl SchedConfig {
    /// A config with the given pool width (min 1).
    pub fn with_workers(workers: usize) -> SchedConfig {
        SchedConfig { workers: workers.max(1), ..SchedConfig::default() }
    }

    /// Same config with a fault plan attached.
    pub fn with_faults(mut self, faults: Faults) -> SchedConfig {
        self.faults = faults;
        self
    }
}

/// Scheduling granularity for one submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// Stage-task granularity (the point of this crate).
    #[default]
    Stage,
    /// The whole job as one task on one worker — the legacy
    /// rayon-per-problem behavior, kept as the benchmark baseline and
    /// for apples-to-apples comparisons.
    WholeJob,
}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Higher runs first; jobs of equal priority round-robin.
    pub priority: i32,
    /// Stage-task (default) or whole-job scheduling.
    pub granularity: Granularity,
    /// Circuit-breaker key — typically the spec's content hash, so
    /// resubmissions of the same poisoned spec trip the breaker
    /// together. `None` opts the job out of quarantine tracking.
    pub fault_key: Option<u64>,
}

impl SubmitOptions {
    /// Options with the given priority.
    pub fn priority(priority: i32) -> SubmitOptions {
        SubmitOptions { priority, ..SubmitOptions::default() }
    }
}

/// One engine event, enveloped with the job id and a per-job sequence
/// number (0-based, dense) so interleaved streams reassemble.
#[derive(Clone, Debug)]
pub struct JobEvent {
    /// Scheduler-assigned job id.
    pub job: u64,
    /// Per-job emission index.
    pub seq: u64,
    /// The engine event.
    pub event: Event,
}

impl JobEvent {
    /// One JSON line: `{"job":…,"seq":…,"event":{…}}`.
    pub fn to_json(&self) -> String {
        format!(r#"{{"job":{},"seq":{},"event":{}}}"#, self.job, self.seq, self.event.to_json())
    }
}

/// Callback receiving a job's events in order (seq is strictly
/// increasing per job). Invoked from worker threads.
pub type EventSink = Box<dyn Fn(&JobEvent) + Send + Sync>;
/// Callback invoked exactly once when a job's outcome is ready, from
/// the worker thread that finished it (completion order, not submit
/// order — useful for progress reporting).
pub type DoneHook = Box<dyn FnOnce(&InferenceOutcome, &JobStats) + Send>;

/// Per-job scheduler accounting, delivered with the done hook.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobStats {
    /// Total worker time spent executing this job's tasks — the job's
    /// *exclusive* compute cost, excluding ready-queue wait and other
    /// jobs' interleaved tasks (unlike `InferenceOutcome::runtime`,
    /// which spans first dispatch to completion).
    pub busy: std::time::Duration,
    /// Tasks executed for this job (1 for whole-job granularity).
    pub tasks: u64,
}

/// Work a worker can pick up for a job.
enum WorkItem {
    /// Run the job's initial `advance` (deferred from `submit` so
    /// admission stays cheap and ordering respects priority).
    Start(Instant),
    /// Execute one stage task.
    Stage(Task, Instant),
    /// Run the whole job inline ([`Granularity::WholeJob`]).
    Whole(Instant),
}

#[derive(Default)]
struct JobQueue {
    items: VecDeque<WorkItem>,
    in_ring: bool,
    /// Current ring key (`-priority - boost`). Only meaningful while
    /// `in_ring`.
    ring_key: i64,
    /// Aging boost in priority levels. Persists across ring
    /// residencies — a stage job re-enters the ring for every task
    /// batch, and resetting here would make it re-age from scratch
    /// each task, defeating the starvation guard. The boost stops
    /// growing once the job is being served regularly (service resets
    /// the aging *clock*, not the earned level).
    boost: u64,
    /// Pop tick at which the job entered the ring or was last served;
    /// aging measures waiting time from here.
    served_tick: u64,
}

struct JobInner {
    /// The job as submitted; consumed when a worker first picks it up
    /// (deadlines are measured from that pickup, not from admission —
    /// queue wait must not eat a job's time budget).
    pending: Option<Job>,
    staged: Option<StagedJob>,
    outstanding: usize,
    stats: JobStats,
    seq: u64,
    sink: Option<EventSink>,
    on_done: Option<DoneHook>,
    outcome: Option<Arc<InferenceOutcome>>,
    /// Set on the first permanent task failure; later task results for
    /// this job are drained (dropped) instead of fed to the machine,
    /// and the job finalizes once the last in-flight task is accounted.
    failed: Option<StopReason>,
    /// Transient-fault retries consumed so far.
    retries: u32,
}

struct JobRun {
    id: u64,
    priority: i32,
    fault_key: Option<u64>,
    cancel: CancelToken,
    inner: Mutex<JobInner>,
    done_cv: Condvar,
}

struct PoolState {
    /// Jobs with ready work, ordered by `-priority` (BTreeMap ascending
    /// ⇒ highest priority first); round-robin within a key.
    ring: BTreeMap<i64, VecDeque<u64>>,
    queues: HashMap<u64, JobQueue>,
    jobs: HashMap<u64, Arc<JobRun>>,
    /// Monotone pop counter; the clock priority aging runs on.
    tick: u64,
    shutdown: bool,
}

/// The spec-hash circuit breaker: counts jobs that died panicking, per
/// fault key. Once a key's count reaches the threshold, submissions
/// carrying it fail fast with `stopped: quarantined`.
#[derive(Default)]
struct Breaker {
    panics: Mutex<HashMap<u64, u32>>,
}

impl Breaker {
    fn record_panic(&self, key: Option<u64>) {
        if let Some(key) = key {
            *self.panics.lock().unwrap().entry(key).or_insert(0) += 1;
        }
    }

    fn is_open(&self, key: u64, threshold: u32) -> bool {
        threshold > 0 && self.panics.lock().unwrap().get(&key).is_some_and(|&n| n >= threshold)
    }
}

struct Shared {
    engine: Engine,
    cfg: SchedConfig,
    state: Mutex<PoolState>,
    cv: Condvar,
    metrics: Metrics,
    breaker: Breaker,
    next_id: AtomicU64,
}

/// The stage-graph scheduler: a fixed worker pool plus the ready-queue
/// machinery. See the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A handle to one submitted job.
pub struct JobTicket {
    job: Arc<JobRun>,
}

impl JobTicket {
    /// Scheduler-assigned job id (matches [`JobEvent::job`]).
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The priority the job was admitted with.
    pub fn priority(&self) -> i32 {
        self.job.priority
    }

    /// Trips the job's cancel token; the engine stops cooperatively at
    /// the next task boundary and the outcome arrives as a partial
    /// result (`stopped: cancelled`).
    pub fn cancel(&self) {
        self.job.cancel.cancel();
    }

    /// The outcome, if the job has finished.
    pub fn try_outcome(&self) -> Option<Arc<InferenceOutcome>> {
        self.job.inner.lock().unwrap().outcome.clone()
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn wait(&self) -> Arc<InferenceOutcome> {
        let mut inner = self.job.inner.lock().unwrap();
        loop {
            if let Some(outcome) = &inner.outcome {
                return outcome.clone();
            }
            inner = self.job.done_cv.wait(inner).unwrap();
        }
    }

    /// Blocks until the job finishes or `timeout` elapses. `None` means
    /// the job is still running — the chaos suite's "no hang exceeds
    /// the deadline ceiling" assertions are built on this.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<InferenceOutcome>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.job.inner.lock().unwrap();
        loop {
            if let Some(outcome) = &inner.outcome {
                return Some(outcome.clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            inner = self.job.done_cv.wait_timeout(inner, left).unwrap().0;
        }
    }
}

impl Scheduler {
    /// A scheduler with a fresh (cache-less) engine.
    pub fn new(config: SchedConfig) -> Scheduler {
        Scheduler::with_engine(config, Engine::new())
    }

    /// A scheduler driving jobs through the given engine (share an
    /// engine to share its trace cache across jobs).
    pub fn with_engine(config: SchedConfig, engine: Engine) -> Scheduler {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(PoolState {
                ring: BTreeMap::new(),
                queues: HashMap::new(),
                jobs: HashMap::new(),
                tick: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            metrics: Metrics::new(workers),
            breaker: Breaker::default(),
            next_id: AtomicU64::new(1),
            cfg: config,
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gcln-sched-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { shared, workers: Mutex::new(workers) }
    }

    /// Submits a job with default options and no callbacks.
    pub fn submit(&self, job: Job) -> JobTicket {
        self.submit_with(job, SubmitOptions::default(), None, None)
    }

    /// Submits a job. `sink` receives the job's [`JobEvent`]s in order;
    /// `on_done` fires once when the outcome is ready. Jobs submitted
    /// after [`Scheduler::shutdown`] began are still executed (shutdown
    /// drains everything admitted); gate admission externally if you
    /// need to refuse work.
    pub fn submit_with(
        &self,
        job: Job,
        opts: SubmitOptions,
        sink: Option<EventSink>,
        on_done: Option<DoneHook>,
    ) -> JobTicket {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = job.cancel_token();
        let item = match opts.granularity {
            Granularity::Stage => WorkItem::Start(Instant::now()),
            Granularity::WholeJob => WorkItem::Whole(Instant::now()),
        };
        let run = Arc::new(JobRun {
            id,
            priority: opts.priority,
            fault_key: opts.fault_key,
            cancel,
            inner: Mutex::new(JobInner {
                pending: Some(job),
                staged: None,
                outstanding: 0,
                stats: JobStats::default(),
                seq: 0,
                sink,
                on_done,
                outcome: None,
                failed: None,
                retries: 0,
            }),
            done_cv: Condvar::new(),
        });
        self.shared.metrics.job_submitted();
        // Circuit breaker: a spec whose jobs keep dying panicking fails
        // fast — the ticket resolves immediately with a structured
        // `quarantined` outcome and no task ever runs.
        if let Some(key) = opts.fault_key {
            if self.shared.breaker.is_open(key, self.shared.cfg.quarantine_threshold) {
                self.shared.metrics.job_quarantined();
                let mut inner = run.inner.lock().unwrap();
                inner.pending = None;
                let events = vec![
                    Event::JobStopped { reason: StopReason::Quarantined },
                    Event::JobFinished { valid: false, cegis_rounds: 0, ms: 0.0 },
                ];
                for event in events.clone() {
                    emit(&run, &mut inner, event);
                }
                let outcome = InferenceOutcome {
                    loops: Vec::new(),
                    valid: false,
                    cegis_rounds_used: 0,
                    runtime: Duration::ZERO,
                    report: CheckReport::default(),
                    stopped: Some(StopReason::Quarantined),
                    events,
                };
                store_outcome(&self.shared, &run, &mut inner, outcome);
                drop(inner);
                return JobTicket { job: run };
            }
        }
        let mut st = self.shared.state.lock().unwrap();
        st.jobs.insert(id, run.clone());
        enqueue(&self.shared, &mut st, id, run.priority, vec![item]);
        drop(st);
        JobTicket { job: run }
    }

    /// Whether the circuit breaker is currently open for `fault_key`
    /// (submissions carrying it would fail fast).
    pub fn is_quarantined(&self, fault_key: u64) -> bool {
        self.shared.breaker.is_open(fault_key, self.shared.cfg.quarantine_threshold)
    }

    /// Jobs admitted but not yet finished.
    pub fn active_jobs(&self) -> usize {
        self.shared.state.lock().unwrap().jobs.len()
    }

    /// A point-in-time copy of the scheduler's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Drains every admitted job, then stops and joins the workers.
    /// Idempotent. Cancel jobs first (e.g. via their tickets) for a
    /// fast shutdown.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Adds work items for a job and registers the job in the ready ring
/// at its base priority plus any earned aging boost. Caller holds the
/// state lock.
fn enqueue(
    shared: &Shared,
    st: &mut PoolState,
    job_id: u64,
    priority: i32,
    items: Vec<WorkItem>,
) {
    let tick = st.tick;
    let q = st.queues.entry(job_id).or_default();
    for item in items {
        q.items.push_back(item);
    }
    if !q.in_ring && !q.items.is_empty() {
        q.in_ring = true;
        q.ring_key = -i64::from(priority) - q.boost as i64;
        q.served_tick = tick;
        st.ring.entry(q.ring_key).or_default().push_back(job_id);
    }
    shared.cv.notify_all();
}

/// Priority aging: every ring-resident job that has sat through
/// `interval` pops while *strictly higher-priority* work was being
/// served climbs one level. Jobs at the currently-served level are
/// getting round-robin service, not starving — aging them too would
/// inflate every contending job in lockstep and never close a relative
/// gap. Driven by the pop tick — a deterministic function of scheduler
/// activity, not wall clock — so starvation relief does not depend on
/// timing. Caller holds the state lock.
fn age_ring(st: &mut PoolState, interval: u64, served_key: i64) {
    let tick = st.tick;
    let mut moves: Vec<(u64, i64, i64)> = Vec::new();
    for (&job_id, q) in &mut st.queues {
        if q.in_ring && q.ring_key > served_key {
            if tick.saturating_sub(q.served_tick) >= interval {
                let from = q.ring_key;
                q.boost += 1;
                q.ring_key -= 1; // BTreeMap keys are -priority: smaller = higher
                q.served_tick = tick;
                moves.push((job_id, from, q.ring_key));
            }
        } else if q.in_ring {
            // At (or above) the service level: round-robin is reaching
            // this job, so its starvation clock stays reset.
            q.served_tick = tick;
        }
    }
    for (job_id, from, to) in moves {
        if let Some(ring) = st.ring.get_mut(&from) {
            ring.retain(|&j| j != job_id);
            if ring.is_empty() {
                st.ring.remove(&from);
            }
        }
        st.ring.entry(to).or_default().push_back(job_id);
    }
}

/// Pops the next ready task: highest priority first, round-robin across
/// jobs within a priority (a job with more ready tasks goes to the back
/// of its priority's ring after yielding one task).
fn pop_ready(st: &mut PoolState, aging: Option<u64>) -> Option<(Arc<JobRun>, WorkItem)> {
    st.tick += 1;
    if let Some(interval) = aging {
        if let Some((&served_key, _)) = st.ring.iter().find(|(_, ring)| !ring.is_empty()) {
            age_ring(st, interval, served_key);
        }
    }
    let (&key, _) = st.ring.iter().find(|(_, ring)| !ring.is_empty())?;
    let ring = st.ring.get_mut(&key).expect("ring key");
    let job_id = ring.pop_front().expect("nonempty ring");
    if ring.is_empty() {
        st.ring.remove(&key);
    }
    let tick = st.tick;
    let q = st.queues.get_mut(&job_id).expect("queued job");
    let item = q.items.pop_front().expect("job in ring has work");
    q.served_tick = tick; // being popped is service: the aging clock resets
    if q.items.is_empty() {
        q.in_ring = false;
    } else {
        st.ring.entry(key).or_default().push_back(job_id);
    }
    let job = st.jobs.get(&job_id).expect("live job").clone();
    Some((job, item))
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let picked = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(found) = pop_ready(&mut st, shared.cfg.aging_interval) {
                    break Some(found);
                }
                if st.shutdown && st.jobs.is_empty() {
                    break None;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        let Some((job, item)) = picked else { return };
        match item {
            WorkItem::Start(enqueued) => {
                shared.metrics.observe_queue_wait(enqueued.elapsed());
                let mut inner = job.inner.lock().unwrap();
                // Unfold here, not at submit: the job's wall clock (and
                // with it any deadline) starts when a worker first
                // picks it up, exactly like the solo `Engine::run`.
                let spec = inner.pending.take().expect("pending job");
                inner.staged = Some(StagedJob::new(&shared.engine, &spec));
                advance_and_dispatch(shared, &job, &mut inner);
            }
            WorkItem::Stage(task, enqueued) => run_stage_task(shared, &job, task, enqueued),
            WorkItem::Whole(enqueued) => {
                shared.metrics.observe_queue_wait(enqueued.elapsed());
                let spec = job.inner.lock().unwrap().pending.take().expect("pending job");
                let slot = rayon::reserve_external_worker();
                let t0 = Instant::now();
                // `run_with_events` already isolates stage-task panics
                // (returning a `task_panicked` partial outcome); this
                // guard catches panics in the driver itself, so a bug
                // there still resolves the ticket instead of killing
                // the worker.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    shared.engine.run_with_events(&spec, &mut |event| {
                        let mut inner = job.inner.lock().unwrap();
                        emit(&job, &mut inner, event.clone());
                    })
                }));
                drop(slot);
                let took = t0.elapsed();
                shared.metrics.observe_task("whole", took);
                let mut inner = job.inner.lock().unwrap();
                inner.stats.busy += took;
                inner.stats.tasks += 1;
                let outcome = match result {
                    Ok(outcome) => {
                        if outcome.stopped == Some(StopReason::TaskPanicked) {
                            shared.metrics.task_panicked();
                            shared.breaker.record_panic(job.fault_key);
                        }
                        outcome
                    }
                    Err(_) => {
                        shared.metrics.task_panicked();
                        shared.breaker.record_panic(job.fault_key);
                        let events = vec![
                            Event::JobStopped { reason: StopReason::TaskPanicked },
                            Event::JobFinished { valid: false, cegis_rounds: 0, ms: 0.0 },
                        ];
                        for event in events.clone() {
                            emit(&job, &mut inner, event);
                        }
                        InferenceOutcome {
                            loops: Vec::new(),
                            valid: false,
                            cegis_rounds_used: 0,
                            runtime: took,
                            report: CheckReport::default(),
                            stopped: Some(StopReason::TaskPanicked),
                            events,
                        }
                    }
                };
                finish_job(shared, &job, inner, outcome);
            }
        }
    }
}

/// Executes one stage task under `catch_unwind`, with the transient
/// retry and permanent-failure paths.
fn run_stage_task(shared: &Arc<Shared>, job: &Arc<JobRun>, task: Task, enqueued: Instant) {
    shared.metrics.observe_queue_wait(enqueued.elapsed());
    {
        // The job already failed permanently (a sibling panicked):
        // account this task off without executing — its result could
        // never be used — and finalize once the last one drains.
        let mut inner = job.inner.lock().unwrap();
        if inner.failed.is_some() {
            inner.outstanding -= 1;
            if inner.outstanding == 0 {
                fail_job(shared, job, &mut inner);
            }
            return;
        }
    }
    let kind = task.kind();
    // Hold a slot of the rayon budget while executing, so task-internal
    // fan-outs (checker, bounds) don't stack a second full thread pool
    // on top of this one.
    let slot = rayon::reserve_external_worker();
    let t0 = Instant::now();
    // The fault query runs *inside* the unwind guard but *before* the
    // task closure is consumed: an injected panic exercises the real
    // unwind path, yet leaves the task intact in `task_slot` so it can
    // be retried. A genuine panic from `execute` consumes the task —
    // there is nothing left to retry, the job fails.
    let mut task_slot = Some(task);
    let result = catch_unwind(AssertUnwindSafe(|| {
        shared.cfg.faults.maybe_panic(site::SCHED_TASK_PANIC);
        task_slot.take().expect("task present").execute()
    }));
    drop(slot);
    let took = t0.elapsed();
    match result {
        Ok(done) => {
            shared.metrics.observe_task(kind.as_str(), took);
            let mut inner = job.inner.lock().unwrap();
            inner.stats.busy += took;
            inner.stats.tasks += 1;
            inner.outstanding -= 1;
            if inner.failed.is_some() {
                // A sibling failed the job while we were executing.
                if inner.outstanding == 0 {
                    fail_job(shared, job, &mut inner);
                }
            } else {
                inner.staged.as_mut().expect("staged job").complete(done);
                if inner.outstanding == 0 {
                    advance_and_dispatch(shared, job, &mut inner);
                }
            }
        }
        Err(_) => {
            if let Some(task) = task_slot.take() {
                // Transient injected fault: retry on the deterministic
                // exponential backoff schedule while budget remains.
                let attempt = {
                    let mut inner = job.inner.lock().unwrap();
                    (inner.failed.is_none() && inner.retries < shared.cfg.max_task_retries)
                        .then(|| {
                            inner.retries += 1;
                            inner.retries
                        })
                };
                if let Some(attempt) = attempt {
                    shared.metrics.task_retried();
                    std::thread::sleep(
                        shared.cfg.retry_backoff * 2u32.pow(attempt.saturating_sub(1)),
                    );
                    let mut st = shared.state.lock().unwrap();
                    if st.jobs.contains_key(&job.id) {
                        let item = WorkItem::Stage(task, Instant::now());
                        enqueue(shared, &mut st, job.id, job.priority, vec![item]);
                    }
                    return;
                }
            }
            // Permanent failure: a genuine panic, or retries exhausted.
            shared.metrics.task_panicked();
            shared.breaker.record_panic(job.fault_key);
            let mut inner = job.inner.lock().unwrap();
            inner.stats.tasks += 1;
            inner.outstanding -= 1;
            if inner.failed.is_none() {
                inner.failed = Some(StopReason::TaskPanicked);
                // Purge the job's still-queued tasks: they would only
                // be drained one by one, and the queue slots are better
                // spent on healthy neighbors.
                let mut st = shared.state.lock().unwrap();
                if let Some(q) = st.queues.get_mut(&job.id) {
                    let purged = q.items.len();
                    q.items.clear();
                    if q.in_ring {
                        q.in_ring = false;
                        let key = q.ring_key;
                        if let Some(ring) = st.ring.get_mut(&key) {
                            ring.retain(|&j| j != job.id);
                            if ring.is_empty() {
                                st.ring.remove(&key);
                            }
                        }
                    }
                    inner.outstanding -= purged;
                }
            }
            if inner.outstanding == 0 {
                fail_job(shared, job, &mut inner);
            }
        }
    }
}

/// Finalizes a permanently failed job: aborts the state machine for a
/// structured partial outcome (`JobStopped` + `JobFinished` appended,
/// events so far intact) and publishes it. Caller holds the inner lock.
fn fail_job(shared: &Arc<Shared>, job: &Arc<JobRun>, inner: &mut JobInner) {
    let reason = inner.failed.expect("failure reason set");
    let outcome = match inner.staged.as_mut() {
        Some(staged) => {
            let outcome = staged.abort(reason);
            let events = staged.take_events();
            for event in events {
                emit(job, inner, event);
            }
            *outcome
        }
        // The machine never unfolded (panic on the very first batch
        // before `advance` produced state) — synthesize the minimal
        // structured outcome.
        None => {
            let events = vec![
                Event::JobStopped { reason },
                Event::JobFinished { valid: false, cegis_rounds: 0, ms: 0.0 },
            ];
            for event in events.clone() {
                emit(job, inner, event);
            }
            InferenceOutcome {
                loops: Vec::new(),
                valid: false,
                cegis_rounds_used: 0,
                runtime: Duration::ZERO,
                report: CheckReport::default(),
                stopped: Some(reason),
                events,
            }
        }
    };
    inner.staged = None;
    store_outcome(shared, job, inner, outcome);
}

/// Advances a job's state machine, streams the fresh events, and either
/// enqueues the next task batch or finalizes the job. Caller holds the
/// job's inner lock (passed by guard where finalization may consume it).
fn advance_and_dispatch(shared: &Arc<Shared>, job: &Arc<JobRun>, inner: &mut JobInner) {
    let staged = inner.staged.as_mut().expect("staged job");
    let step = staged.advance();
    let events = staged.take_events();
    for event in events {
        emit(job, inner, event);
    }
    match step {
        Step::Run(tasks) => {
            inner.outstanding = tasks.len();
            let now = Instant::now();
            let items: Vec<WorkItem> =
                tasks.into_iter().map(|t| WorkItem::Stage(t, now)).collect();
            let mut st = shared.state.lock().unwrap();
            enqueue(shared, &mut st, job.id, job.priority, items);
        }
        Step::Done(outcome) => {
            inner.staged = None;
            store_outcome(shared, job, inner, *outcome);
        }
    }
}

fn finish_job(
    shared: &Arc<Shared>,
    job: &Arc<JobRun>,
    mut inner: MutexGuard<'_, JobInner>,
    outcome: InferenceOutcome,
) {
    store_outcome(shared, job, &mut inner, outcome);
}

/// Publishes a finished outcome: wakes waiters, runs the done hook, and
/// retires the job from the pool. The done hook runs on this worker
/// thread with no scheduler locks held beyond the job's own (callers
/// must not re-enter the scheduler from it with the same job).
fn store_outcome(
    shared: &Arc<Shared>,
    job: &Arc<JobRun>,
    inner: &mut JobInner,
    outcome: InferenceOutcome,
) {
    let outcome = Arc::new(outcome);
    let stats = inner.stats;
    inner.outcome = Some(outcome.clone());
    let hook = inner.on_done.take();
    inner.sink = None;
    job.done_cv.notify_all();
    if let Some(hook) = hook {
        hook(&outcome, &stats);
    }
    shared.metrics.job_completed();
    let mut st = shared.state.lock().unwrap();
    st.jobs.remove(&job.id);
    st.queues.remove(&job.id);
    // Wake idle workers so the shutdown condition is re-evaluated.
    shared.cv.notify_all();
}

/// Streams one event to the job's sink with the next sequence number.
fn emit(job: &Arc<JobRun>, inner: &mut JobInner, event: Event) {
    let seq = inner.seq;
    inner.seq += 1;
    if let Some(sink) = &inner.sink {
        sink(&JobEvent { job: job.id, seq, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_engine::{GclnConfig, PipelineConfig, ProblemSpec};
    use std::sync::Mutex as StdMutex;

    fn quick_job(name: &str) -> Job {
        let spec = ProblemSpec::from_registry(name).unwrap();
        Job::new(spec).with_config(PipelineConfig {
            gcln: GclnConfig { max_epochs: 600, ..GclnConfig::default() },
            max_inputs: 40,
            max_attempts: 2,
            cegis_rounds: 1,
            ..PipelineConfig::default()
        })
    }

    fn strip_ms(events: &[Event]) -> Vec<String> {
        events
            .iter()
            .map(|e| {
                let j = e.to_json();
                match j.find("\"ms\":") {
                    Some(i) => j[..i].to_string(),
                    None => j,
                }
            })
            .collect()
    }

    #[test]
    fn scheduled_job_matches_solo_engine_bit_for_bit() {
        let solo = Engine::new().run(&quick_job("ps2"));
        let sched = Scheduler::new(SchedConfig::with_workers(3));
        let ticket = sched.submit(quick_job("ps2"));
        let outcome = ticket.wait();
        assert_eq!(outcome.valid, solo.valid);
        assert_eq!(strip_ms(&outcome.events), strip_ms(&solo.events));
        for (a, b) in outcome.loops.iter().zip(&solo.loops) {
            assert_eq!(a.formula, b.formula);
            assert_eq!(a.attempts, b.attempts);
        }
        sched.shutdown();
    }

    #[test]
    fn whole_job_granularity_matches_stage_granularity() {
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        let staged = sched.submit(quick_job("ps3"));
        let whole = sched.submit_with(
            quick_job("ps3"),
            SubmitOptions { granularity: Granularity::WholeJob, ..SubmitOptions::default() },
            None,
            None,
        );
        let a = staged.wait();
        let b = whole.wait();
        assert_eq!(strip_ms(&a.events), strip_ms(&b.events));
        assert_eq!(a.loops[0].formula, b.loops[0].formula);
        sched.shutdown();
    }

    #[test]
    fn event_sink_receives_dense_per_job_sequence_numbers() {
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        let seen: Arc<StdMutex<Vec<(u64, u64, String)>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let ticket = sched.submit_with(
            quick_job("ps2"),
            SubmitOptions::default(),
            Some(Box::new(move |ev: &JobEvent| {
                sink_seen.lock().unwrap().push((ev.job, ev.seq, ev.event.to_json()));
            })),
            None,
        );
        let outcome = ticket.wait();
        sched.shutdown();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), outcome.events.len(), "sink must see every event");
        for (i, (job, seq, json)) in seen.iter().enumerate() {
            assert_eq!(*job, ticket.id());
            assert_eq!(*seq, i as u64, "seq numbers must be dense and ordered");
            assert_eq!(*json, outcome.events[i].to_json());
        }
    }

    #[test]
    fn priorities_order_work_on_a_single_worker() {
        // One worker: the high-priority job's tasks must be picked
        // before the low-priority job's, so it finishes first.
        let sched = Scheduler::new(SchedConfig::with_workers(1));
        let order: Arc<StdMutex<Vec<&'static str>>> = Arc::new(StdMutex::new(Vec::new()));
        let lo_order = order.clone();
        let hi_order = order.clone();
        let lo = sched.submit_with(
            quick_job("ps2"),
            SubmitOptions::priority(-5),
            None,
            Some(Box::new(move |_, _| lo_order.lock().unwrap().push("lo"))),
        );
        let hi = sched.submit_with(
            quick_job("ps3"),
            SubmitOptions::priority(5),
            None,
            Some(Box::new(move |_, _| hi_order.lock().unwrap().push("hi"))),
        );
        lo.wait();
        hi.wait();
        sched.shutdown();
        // The low-priority job was submitted first, but with one worker
        // the high-priority job must still overtake it.
        assert_eq!(order.lock().unwrap().as_slice(), ["hi", "lo"]);
    }

    #[test]
    fn cancelled_job_completes_partially_and_neighbors_are_unaffected() {
        let solo = Engine::new().run(&quick_job("ps3"));
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        let doomed = sched.submit(quick_job("ps2"));
        let healthy = sched.submit(quick_job("ps3"));
        doomed.cancel();
        let d = doomed.wait();
        let h = healthy.wait();
        sched.shutdown();
        assert_eq!(d.stopped, Some(gcln_engine::StopReason::Cancelled));
        assert_eq!(strip_ms(&h.events), strip_ms(&solo.events), "neighbor must be untouched");
        assert!(h.valid);
    }

    /// Exactly one injected panic (probability 1.0, fire limit 1, no
    /// retries): the unlucky job fails with a structured
    /// `task_panicked` partial outcome, every ticket resolves, and the
    /// surviving job is bit-identical to its solo run.
    #[test]
    fn injected_task_panic_fails_only_its_job_and_neighbors_match_solo() {
        let solo_ps2 = Engine::new().run(&quick_job("ps2"));
        let solo_ps3 = Engine::new().run(&quick_job("ps3"));
        let cfg = SchedConfig {
            faults: Faults::parse("seed=1,sched.task_panic=1.0:1").unwrap(),
            max_task_retries: 0,
            ..SchedConfig::with_workers(2)
        };
        let sched = Scheduler::new(cfg);
        let tickets =
            [sched.submit(quick_job("ps2")), sched.submit(quick_job("ps3"))];
        let outcomes: Vec<_> = tickets
            .iter()
            .map(|t| t.wait_timeout(Duration::from_secs(120)).expect("ticket must resolve"))
            .collect();
        let m = sched.metrics();
        sched.shutdown();
        assert_eq!(m.tasks_panicked, 1);
        let failed: Vec<usize> = (0..2)
            .filter(|&i| outcomes[i].stopped == Some(StopReason::TaskPanicked))
            .collect();
        assert_eq!(failed.len(), 1, "exactly one job absorbs the single injected panic");
        for (i, outcome) in outcomes.iter().enumerate() {
            let solo = if i == 0 { &solo_ps2 } else { &solo_ps3 };
            if failed[0] == i {
                assert!(!outcome.valid);
                assert!(outcome.events.iter().any(|e| matches!(
                    e,
                    Event::JobStopped { reason: StopReason::TaskPanicked }
                )));
                assert!(matches!(outcome.events.last(), Some(Event::JobFinished { .. })));
            } else {
                assert_eq!(outcome.valid, solo.valid, "job#{i}");
                assert_eq!(
                    strip_ms(&outcome.events),
                    strip_ms(&solo.events),
                    "neighbor job#{i} was perturbed by the panic"
                );
            }
        }
    }

    /// Transient faults inside the retry budget are invisible: the
    /// first two task pickups panic (injected), both are retried on
    /// the deterministic backoff schedule, and the final outcome is
    /// bit-identical to a fault-free solo run.
    #[test]
    fn transient_faults_are_retried_and_leave_the_outcome_bit_identical() {
        let solo = Engine::new().run(&quick_job("ps2"));
        let cfg = SchedConfig {
            faults: Faults::parse("seed=9,sched.task_panic=1.0:2").unwrap(),
            max_task_retries: 2,
            ..SchedConfig::with_workers(1)
        };
        let sched = Scheduler::new(cfg);
        let outcome = sched.submit(quick_job("ps2")).wait();
        let m = sched.metrics();
        sched.shutdown();
        assert_eq!(m.tasks_retried, 2);
        assert_eq!(m.tasks_panicked, 0);
        assert_eq!(outcome.stopped, None);
        assert_eq!(outcome.valid, solo.valid);
        assert_eq!(strip_ms(&outcome.events), strip_ms(&solo.events));
    }

    /// The circuit breaker: two jobs sharing a fault key die panicking,
    /// the third submission with that key fails fast with
    /// `stopped: quarantined` (no task runs), while a different key
    /// still executes normally.
    #[test]
    fn quarantine_trips_after_two_panicked_jobs_on_the_same_key() {
        let cfg = SchedConfig {
            faults: Faults::parse("seed=3,sched.task_panic=1.0:2").unwrap(),
            max_task_retries: 0,
            quarantine_threshold: 2,
            ..SchedConfig::with_workers(1)
        };
        let sched = Scheduler::new(cfg);
        let opts = SubmitOptions { fault_key: Some(42), ..SubmitOptions::default() };
        for round in 0..2 {
            let outcome = sched
                .submit_with(quick_job("ps2"), opts, None, None)
                .wait_timeout(Duration::from_secs(120))
                .expect("ticket must resolve");
            assert_eq!(outcome.stopped, Some(StopReason::TaskPanicked), "round {round}");
            assert_eq!(sched.is_quarantined(42), round == 1);
        }
        let quarantined = sched
            .submit_with(quick_job("ps2"), opts, None, None)
            .wait_timeout(Duration::from_secs(10))
            .expect("fail-fast outcome must be immediate");
        assert_eq!(quarantined.stopped, Some(StopReason::Quarantined));
        assert!(!quarantined.valid);
        // A different key is unaffected — and the fire limit is spent,
        // so the job runs clean.
        let opts = SubmitOptions { fault_key: Some(7), ..SubmitOptions::default() };
        let healthy = sched.submit_with(quick_job("ps2"), opts, None, None).wait();
        let m = sched.metrics();
        sched.shutdown();
        assert_eq!(healthy.stopped, None);
        assert!(healthy.valid);
        assert_eq!(m.jobs_quarantined, 1);
        assert_eq!(m.tasks_panicked, 2);
    }

    /// Priority aging at the ring level, driven single-threaded so the
    /// pop sequence is exactly reproducible: a starved low-priority
    /// job climbs one level per interval and overtakes the
    /// high-priority job's queue before it drains; with aging disabled
    /// it is served dead last.
    #[test]
    fn aging_promotes_a_starved_job_deterministically() {
        let pop_sequence = |aging: Option<u64>| -> Vec<u64> {
            let shared = Shared {
                engine: Engine::new(),
                cfg: SchedConfig::with_workers(1),
                state: Mutex::new(PoolState {
                    ring: BTreeMap::new(),
                    queues: HashMap::new(),
                    jobs: HashMap::new(),
                    tick: 0,
                    shutdown: false,
                }),
                cv: Condvar::new(),
                metrics: Metrics::new(1),
                breaker: Breaker::default(),
                next_id: AtomicU64::new(1),
            };
            let mk_job = |id: u64, priority: i32| {
                Arc::new(JobRun {
                    id,
                    priority,
                    fault_key: None,
                    cancel: quick_job("ps2").cancel_token(),
                    inner: Mutex::new(JobInner {
                        pending: None,
                        staged: None,
                        outstanding: 0,
                        stats: JobStats::default(),
                        seq: 0,
                        sink: None,
                        on_done: None,
                        outcome: None,
                        failed: None,
                        retries: 0,
                    }),
                    done_cv: Condvar::new(),
                })
            };
            let mut st = shared.state.lock().unwrap();
            // Low-priority job with one item, high-priority with 30:
            // without aging the low item is always sorted last.
            for (id, priority, items) in [(1u64, -2, 1usize), (2, 2, 30)] {
                st.jobs.insert(id, mk_job(id, priority));
                let items = (0..items).map(|_| WorkItem::Start(Instant::now())).collect();
                enqueue(&shared, &mut st, id, priority, items);
            }
            let mut order = Vec::new();
            while let Some((job, _item)) = pop_ready(&mut st, aging) {
                order.push(job.id);
            }
            order
        };

        let with_aging = pop_sequence(Some(3));
        let lo_at = with_aging.iter().position(|&id| id == 1).unwrap();
        assert!(
            lo_at < with_aging.len() - 1,
            "aging must serve the starved job before the high-priority queue drains \
             (served at {lo_at}/{})",
            with_aging.len()
        );
        // Reproducible: the same pop sequence every time.
        assert_eq!(with_aging, pop_sequence(Some(3)));
        // Without aging, strict priority order: the low job is last.
        let without = pop_sequence(None);
        assert_eq!(without.iter().position(|&id| id == 1), Some(without.len() - 1));
    }

    /// End-to-end starvation guard: one worker, an aggressive aging
    /// interval, and a burst of high-priority jobs behind one
    /// low-priority job — the low job must not finish last.
    #[test]
    fn aging_prevents_starvation_under_a_high_priority_burst() {
        let cfg = SchedConfig { aging_interval: Some(2), ..SchedConfig::with_workers(1) };
        let sched = Scheduler::new(cfg);
        let order: Arc<StdMutex<Vec<String>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut tickets = Vec::new();
        let lo_order = order.clone();
        tickets.push(sched.submit_with(
            quick_job("ps2"),
            SubmitOptions::priority(-5),
            None,
            Some(Box::new(move |_, _| lo_order.lock().unwrap().push("lo".into()))),
        ));
        for i in 0..5 {
            let hi_order = order.clone();
            tickets.push(sched.submit_with(
                quick_job("ps3"),
                SubmitOptions::priority(5),
                None,
                Some(Box::new(move |_, _| hi_order.lock().unwrap().push(format!("hi{i}")))),
            ));
        }
        for t in &tickets {
            t.wait();
        }
        sched.shutdown();
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 6);
        assert_ne!(order.last().unwrap(), "lo", "aging must keep the low-priority job moving");
    }

    #[test]
    fn metrics_count_tasks_and_queue_wait() {
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        sched.submit(quick_job("ps2")).wait();
        let m = sched.metrics();
        sched.shutdown();
        assert_eq!(m.jobs_submitted, 1);
        assert_eq!(m.jobs_completed, 1);
        assert!(m.tasks_executed >= 4, "trace+setup+train+extract+check at least");
        assert!(m.queue_wait.count >= 1);
        let kinds: Vec<&str> = m.tasks.iter().map(|(k, _)| k.as_str()).collect();
        assert!(kinds.contains(&"train") && kinds.contains(&"check"), "kinds: {kinds:?}");
        assert!(m.utilization() > 0.0);
    }
}
