//! # gcln-sched — the stage-graph scheduler
//!
//! One shared worker pool interleaving many inference jobs at *stage
//! task* granularity: while one job trains, its neighbors' trace,
//! check, and extraction tasks fill the idle workers. This is the
//! engine-level parallel suite scheduling the ROADMAP called for —
//! whole-job fan-out (one worker pinned per problem) leaves workers
//! idle whenever the workload mixes long trainings with short bursty
//! stages.
//!
//! ## Architecture
//!
//! Each submitted [`Job`] is unfolded into a
//! [`StagedJob`](gcln_engine::StagedJob) — the engine's stage-graph
//! state machine. The scheduler keeps one ready queue per job plus a
//! priority-ordered ring of jobs with ready tasks:
//!
//! ```text
//!   submit ─▶ StagedJob ─ advance() ─▶ [task, task, …] ─▶ per-job queue
//!                 ▲                                            │
//!                 │           ring: prio -1 ▶ (job A, job C)   │ pop (round-robin
//!                 │                 prio  0 ▶ (job B)          ▼  across jobs)
//!              complete() ◀────────── workers (shared pool) ───┘
//! ```
//!
//! Workers pop one task at a time, highest priority first and
//! round-robin across jobs within a priority, so no job monopolizes the
//! pool and short jobs flow past long ones. When a job's last
//! outstanding task completes, the completing worker advances the state
//! machine, which emits events and produces the next batch.
//!
//! ## Determinism
//!
//! Per-job results and event streams are **bit-identical to a solo
//! [`Engine::run`]** at any worker count, any priority assignment, and
//! any interleaving: tasks are pure, merges key on `(loop, attempt)`,
//! and each job's events are emitted serially by its own state machine.
//! Events are delivered as [`JobEvent`]s carrying a per-job sequence
//! number, so multiplexed streams reassemble deterministically.
//!
//! Cancel/deadline/budget checks stay cooperative at task boundaries,
//! exactly like the solo engine: a cancelled job drains its in-flight
//! tasks and completes with a partial outcome; other jobs are
//! unaffected.

pub mod metrics;

use gcln_engine::staged::{Step, Task};
use gcln_engine::{CancelToken, Engine, Event, InferenceOutcome, Job, StagedJob};
use metrics::{Metrics, MetricsSnapshot};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Worker threads in the shared pool.
    pub workers: usize,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig { workers: rayon::current_num_threads() }
    }
}

impl SchedConfig {
    /// A config with the given pool width (min 1).
    pub fn with_workers(workers: usize) -> SchedConfig {
        SchedConfig { workers: workers.max(1) }
    }
}

/// Scheduling granularity for one submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// Stage-task granularity (the point of this crate).
    #[default]
    Stage,
    /// The whole job as one task on one worker — the legacy
    /// rayon-per-problem behavior, kept as the benchmark baseline and
    /// for apples-to-apples comparisons.
    WholeJob,
}

/// Per-submission options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Higher runs first; jobs of equal priority round-robin.
    pub priority: i32,
    /// Stage-task (default) or whole-job scheduling.
    pub granularity: Granularity,
}

impl SubmitOptions {
    /// Options with the given priority.
    pub fn priority(priority: i32) -> SubmitOptions {
        SubmitOptions { priority, ..SubmitOptions::default() }
    }
}

/// One engine event, enveloped with the job id and a per-job sequence
/// number (0-based, dense) so interleaved streams reassemble.
#[derive(Clone, Debug)]
pub struct JobEvent {
    /// Scheduler-assigned job id.
    pub job: u64,
    /// Per-job emission index.
    pub seq: u64,
    /// The engine event.
    pub event: Event,
}

impl JobEvent {
    /// One JSON line: `{"job":…,"seq":…,"event":{…}}`.
    pub fn to_json(&self) -> String {
        format!(r#"{{"job":{},"seq":{},"event":{}}}"#, self.job, self.seq, self.event.to_json())
    }
}

/// Callback receiving a job's events in order (seq is strictly
/// increasing per job). Invoked from worker threads.
pub type EventSink = Box<dyn Fn(&JobEvent) + Send + Sync>;
/// Callback invoked exactly once when a job's outcome is ready, from
/// the worker thread that finished it (completion order, not submit
/// order — useful for progress reporting).
pub type DoneHook = Box<dyn FnOnce(&InferenceOutcome, &JobStats) + Send>;

/// Per-job scheduler accounting, delivered with the done hook.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobStats {
    /// Total worker time spent executing this job's tasks — the job's
    /// *exclusive* compute cost, excluding ready-queue wait and other
    /// jobs' interleaved tasks (unlike `InferenceOutcome::runtime`,
    /// which spans first dispatch to completion).
    pub busy: std::time::Duration,
    /// Tasks executed for this job (1 for whole-job granularity).
    pub tasks: u64,
}

/// Work a worker can pick up for a job.
enum WorkItem {
    /// Run the job's initial `advance` (deferred from `submit` so
    /// admission stays cheap and ordering respects priority).
    Start(Instant),
    /// Execute one stage task.
    Stage(Task, Instant),
    /// Run the whole job inline ([`Granularity::WholeJob`]).
    Whole(Instant),
}

#[derive(Default)]
struct JobQueue {
    items: VecDeque<WorkItem>,
    in_ring: bool,
}

struct JobInner {
    /// The job as submitted; consumed when a worker first picks it up
    /// (deadlines are measured from that pickup, not from admission —
    /// queue wait must not eat a job's time budget).
    pending: Option<Job>,
    staged: Option<StagedJob>,
    outstanding: usize,
    stats: JobStats,
    seq: u64,
    sink: Option<EventSink>,
    on_done: Option<DoneHook>,
    outcome: Option<Arc<InferenceOutcome>>,
}

struct JobRun {
    id: u64,
    priority: i32,
    cancel: CancelToken,
    inner: Mutex<JobInner>,
    done_cv: Condvar,
}

struct PoolState {
    /// Jobs with ready work, ordered by `-priority` (BTreeMap ascending
    /// ⇒ highest priority first); round-robin within a key.
    ring: BTreeMap<i64, VecDeque<u64>>,
    queues: HashMap<u64, JobQueue>,
    jobs: HashMap<u64, Arc<JobRun>>,
    shutdown: bool,
}

struct Shared {
    engine: Engine,
    state: Mutex<PoolState>,
    cv: Condvar,
    metrics: Metrics,
    next_id: AtomicU64,
}

/// The stage-graph scheduler: a fixed worker pool plus the ready-queue
/// machinery. See the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A handle to one submitted job.
pub struct JobTicket {
    job: Arc<JobRun>,
}

impl JobTicket {
    /// Scheduler-assigned job id (matches [`JobEvent::job`]).
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The priority the job was admitted with.
    pub fn priority(&self) -> i32 {
        self.job.priority
    }

    /// Trips the job's cancel token; the engine stops cooperatively at
    /// the next task boundary and the outcome arrives as a partial
    /// result (`stopped: cancelled`).
    pub fn cancel(&self) {
        self.job.cancel.cancel();
    }

    /// The outcome, if the job has finished.
    pub fn try_outcome(&self) -> Option<Arc<InferenceOutcome>> {
        self.job.inner.lock().unwrap().outcome.clone()
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn wait(&self) -> Arc<InferenceOutcome> {
        let mut inner = self.job.inner.lock().unwrap();
        loop {
            if let Some(outcome) = &inner.outcome {
                return outcome.clone();
            }
            inner = self.job.done_cv.wait(inner).unwrap();
        }
    }
}

impl Scheduler {
    /// A scheduler with a fresh (cache-less) engine.
    pub fn new(config: SchedConfig) -> Scheduler {
        Scheduler::with_engine(config, Engine::new())
    }

    /// A scheduler driving jobs through the given engine (share an
    /// engine to share its trace cache across jobs).
    pub fn with_engine(config: SchedConfig, engine: Engine) -> Scheduler {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(PoolState {
                ring: BTreeMap::new(),
                queues: HashMap::new(),
                jobs: HashMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            metrics: Metrics::new(workers),
            next_id: AtomicU64::new(1),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gcln-sched-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { shared, workers: Mutex::new(workers) }
    }

    /// Submits a job with default options and no callbacks.
    pub fn submit(&self, job: Job) -> JobTicket {
        self.submit_with(job, SubmitOptions::default(), None, None)
    }

    /// Submits a job. `sink` receives the job's [`JobEvent`]s in order;
    /// `on_done` fires once when the outcome is ready. Jobs submitted
    /// after [`Scheduler::shutdown`] began are still executed (shutdown
    /// drains everything admitted); gate admission externally if you
    /// need to refuse work.
    pub fn submit_with(
        &self,
        job: Job,
        opts: SubmitOptions,
        sink: Option<EventSink>,
        on_done: Option<DoneHook>,
    ) -> JobTicket {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = job.cancel_token();
        let item = match opts.granularity {
            Granularity::Stage => WorkItem::Start(Instant::now()),
            Granularity::WholeJob => WorkItem::Whole(Instant::now()),
        };
        let run = Arc::new(JobRun {
            id,
            priority: opts.priority,
            cancel,
            inner: Mutex::new(JobInner {
                pending: Some(job),
                staged: None,
                outstanding: 0,
                stats: JobStats::default(),
                seq: 0,
                sink,
                on_done,
                outcome: None,
            }),
            done_cv: Condvar::new(),
        });
        self.shared.metrics.job_submitted();
        let mut st = self.shared.state.lock().unwrap();
        st.jobs.insert(id, run.clone());
        enqueue(&self.shared, &mut st, id, run.priority, vec![item]);
        drop(st);
        JobTicket { job: run }
    }

    /// Jobs admitted but not yet finished.
    pub fn active_jobs(&self) -> usize {
        self.shared.state.lock().unwrap().jobs.len()
    }

    /// A point-in-time copy of the scheduler's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Drains every admitted job, then stops and joins the workers.
    /// Idempotent. Cancel jobs first (e.g. via their tickets) for a
    /// fast shutdown.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Adds work items for a job and registers the job in the ready ring.
/// Caller holds the state lock.
fn enqueue(
    shared: &Shared,
    st: &mut PoolState,
    job_id: u64,
    priority: i32,
    items: Vec<WorkItem>,
) {
    let q = st.queues.entry(job_id).or_default();
    for item in items {
        q.items.push_back(item);
    }
    if !q.in_ring && !q.items.is_empty() {
        q.in_ring = true;
        st.ring.entry(-i64::from(priority)).or_default().push_back(job_id);
    }
    shared.cv.notify_all();
}

/// Pops the next ready task: highest priority first, round-robin across
/// jobs within a priority (a job with more ready tasks goes to the back
/// of its priority's ring after yielding one task).
fn pop_ready(st: &mut PoolState) -> Option<(Arc<JobRun>, WorkItem)> {
    let (&key, _) = st.ring.iter().find(|(_, ring)| !ring.is_empty())?;
    let ring = st.ring.get_mut(&key).expect("ring key");
    let job_id = ring.pop_front().expect("nonempty ring");
    if ring.is_empty() {
        st.ring.remove(&key);
    }
    let q = st.queues.get_mut(&job_id).expect("queued job");
    let item = q.items.pop_front().expect("job in ring has work");
    if q.items.is_empty() {
        q.in_ring = false;
    } else {
        st.ring.entry(key).or_default().push_back(job_id);
    }
    let job = st.jobs.get(&job_id).expect("live job").clone();
    Some((job, item))
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let picked = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(found) = pop_ready(&mut st) {
                    break Some(found);
                }
                if st.shutdown && st.jobs.is_empty() {
                    break None;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        let Some((job, item)) = picked else { return };
        match item {
            WorkItem::Start(enqueued) => {
                shared.metrics.observe_queue_wait(enqueued.elapsed());
                let mut inner = job.inner.lock().unwrap();
                // Unfold here, not at submit: the job's wall clock (and
                // with it any deadline) starts when a worker first
                // picks it up, exactly like the solo `Engine::run`.
                let spec = inner.pending.take().expect("pending job");
                inner.staged = Some(StagedJob::new(&shared.engine, &spec));
                advance_and_dispatch(shared, &job, &mut inner);
            }
            WorkItem::Stage(task, enqueued) => {
                shared.metrics.observe_queue_wait(enqueued.elapsed());
                let kind = task.kind();
                // Hold a slot of the rayon budget while executing, so
                // task-internal fan-outs (checker, bounds) don't stack a
                // second full thread pool on top of this one.
                let slot = rayon::reserve_external_worker();
                let t0 = Instant::now();
                let done = task.execute();
                drop(slot);
                let took = t0.elapsed();
                shared.metrics.observe_task(kind.as_str(), took);
                let mut inner = job.inner.lock().unwrap();
                inner.stats.busy += took;
                inner.stats.tasks += 1;
                inner.outstanding -= 1;
                inner.staged.as_mut().expect("staged job").complete(done);
                if inner.outstanding == 0 {
                    advance_and_dispatch(shared, &job, &mut inner);
                }
            }
            WorkItem::Whole(enqueued) => {
                shared.metrics.observe_queue_wait(enqueued.elapsed());
                let spec = job.inner.lock().unwrap().pending.take().expect("pending job");
                let slot = rayon::reserve_external_worker();
                let t0 = Instant::now();
                let outcome = shared.engine.run_with_events(&spec, &mut |event| {
                    let mut inner = job.inner.lock().unwrap();
                    emit(&job, &mut inner, event.clone());
                });
                drop(slot);
                let took = t0.elapsed();
                shared.metrics.observe_task("whole", took);
                let mut inner = job.inner.lock().unwrap();
                inner.stats.busy += took;
                inner.stats.tasks += 1;
                finish_job(shared, &job, inner, outcome);
            }
        }
    }
}

/// Advances a job's state machine, streams the fresh events, and either
/// enqueues the next task batch or finalizes the job. Caller holds the
/// job's inner lock (passed by guard where finalization may consume it).
fn advance_and_dispatch(shared: &Arc<Shared>, job: &Arc<JobRun>, inner: &mut JobInner) {
    let staged = inner.staged.as_mut().expect("staged job");
    let step = staged.advance();
    let events = staged.take_events();
    for event in events {
        emit(job, inner, event);
    }
    match step {
        Step::Run(tasks) => {
            inner.outstanding = tasks.len();
            let now = Instant::now();
            let items: Vec<WorkItem> =
                tasks.into_iter().map(|t| WorkItem::Stage(t, now)).collect();
            let mut st = shared.state.lock().unwrap();
            enqueue(shared, &mut st, job.id, job.priority, items);
        }
        Step::Done(outcome) => {
            inner.staged = None;
            store_outcome(shared, job, inner, *outcome);
        }
    }
}

fn finish_job(
    shared: &Arc<Shared>,
    job: &Arc<JobRun>,
    mut inner: MutexGuard<'_, JobInner>,
    outcome: InferenceOutcome,
) {
    store_outcome(shared, job, &mut inner, outcome);
}

/// Publishes a finished outcome: wakes waiters, runs the done hook, and
/// retires the job from the pool. The done hook runs on this worker
/// thread with no scheduler locks held beyond the job's own (callers
/// must not re-enter the scheduler from it with the same job).
fn store_outcome(
    shared: &Arc<Shared>,
    job: &Arc<JobRun>,
    inner: &mut JobInner,
    outcome: InferenceOutcome,
) {
    let outcome = Arc::new(outcome);
    let stats = inner.stats;
    inner.outcome = Some(outcome.clone());
    let hook = inner.on_done.take();
    inner.sink = None;
    job.done_cv.notify_all();
    if let Some(hook) = hook {
        hook(&outcome, &stats);
    }
    shared.metrics.job_completed();
    let mut st = shared.state.lock().unwrap();
    st.jobs.remove(&job.id);
    st.queues.remove(&job.id);
    // Wake idle workers so the shutdown condition is re-evaluated.
    shared.cv.notify_all();
}

/// Streams one event to the job's sink with the next sequence number.
fn emit(job: &Arc<JobRun>, inner: &mut JobInner, event: Event) {
    let seq = inner.seq;
    inner.seq += 1;
    if let Some(sink) = &inner.sink {
        sink(&JobEvent { job: job.id, seq, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_engine::{GclnConfig, PipelineConfig, ProblemSpec};
    use std::sync::Mutex as StdMutex;

    fn quick_job(name: &str) -> Job {
        let spec = ProblemSpec::from_registry(name).unwrap();
        Job::new(spec).with_config(PipelineConfig {
            gcln: GclnConfig { max_epochs: 600, ..GclnConfig::default() },
            max_inputs: 40,
            max_attempts: 2,
            cegis_rounds: 1,
            ..PipelineConfig::default()
        })
    }

    fn strip_ms(events: &[Event]) -> Vec<String> {
        events
            .iter()
            .map(|e| {
                let j = e.to_json();
                match j.find("\"ms\":") {
                    Some(i) => j[..i].to_string(),
                    None => j,
                }
            })
            .collect()
    }

    #[test]
    fn scheduled_job_matches_solo_engine_bit_for_bit() {
        let solo = Engine::new().run(&quick_job("ps2"));
        let sched = Scheduler::new(SchedConfig::with_workers(3));
        let ticket = sched.submit(quick_job("ps2"));
        let outcome = ticket.wait();
        assert_eq!(outcome.valid, solo.valid);
        assert_eq!(strip_ms(&outcome.events), strip_ms(&solo.events));
        for (a, b) in outcome.loops.iter().zip(&solo.loops) {
            assert_eq!(a.formula, b.formula);
            assert_eq!(a.attempts, b.attempts);
        }
        sched.shutdown();
    }

    #[test]
    fn whole_job_granularity_matches_stage_granularity() {
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        let staged = sched.submit(quick_job("ps3"));
        let whole = sched.submit_with(
            quick_job("ps3"),
            SubmitOptions { granularity: Granularity::WholeJob, ..SubmitOptions::default() },
            None,
            None,
        );
        let a = staged.wait();
        let b = whole.wait();
        assert_eq!(strip_ms(&a.events), strip_ms(&b.events));
        assert_eq!(a.loops[0].formula, b.loops[0].formula);
        sched.shutdown();
    }

    #[test]
    fn event_sink_receives_dense_per_job_sequence_numbers() {
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        let seen: Arc<StdMutex<Vec<(u64, u64, String)>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let ticket = sched.submit_with(
            quick_job("ps2"),
            SubmitOptions::default(),
            Some(Box::new(move |ev: &JobEvent| {
                sink_seen.lock().unwrap().push((ev.job, ev.seq, ev.event.to_json()));
            })),
            None,
        );
        let outcome = ticket.wait();
        sched.shutdown();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), outcome.events.len(), "sink must see every event");
        for (i, (job, seq, json)) in seen.iter().enumerate() {
            assert_eq!(*job, ticket.id());
            assert_eq!(*seq, i as u64, "seq numbers must be dense and ordered");
            assert_eq!(*json, outcome.events[i].to_json());
        }
    }

    #[test]
    fn priorities_order_work_on_a_single_worker() {
        // One worker: the high-priority job's tasks must be picked
        // before the low-priority job's, so it finishes first.
        let sched = Scheduler::new(SchedConfig::with_workers(1));
        let order: Arc<StdMutex<Vec<&'static str>>> = Arc::new(StdMutex::new(Vec::new()));
        let lo_order = order.clone();
        let hi_order = order.clone();
        let lo = sched.submit_with(
            quick_job("ps2"),
            SubmitOptions::priority(-5),
            None,
            Some(Box::new(move |_, _| lo_order.lock().unwrap().push("lo"))),
        );
        let hi = sched.submit_with(
            quick_job("ps3"),
            SubmitOptions::priority(5),
            None,
            Some(Box::new(move |_, _| hi_order.lock().unwrap().push("hi"))),
        );
        lo.wait();
        hi.wait();
        sched.shutdown();
        // The low-priority job was submitted first, but with one worker
        // the high-priority job must still overtake it.
        assert_eq!(order.lock().unwrap().as_slice(), ["hi", "lo"]);
    }

    #[test]
    fn cancelled_job_completes_partially_and_neighbors_are_unaffected() {
        let solo = Engine::new().run(&quick_job("ps3"));
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        let doomed = sched.submit(quick_job("ps2"));
        let healthy = sched.submit(quick_job("ps3"));
        doomed.cancel();
        let d = doomed.wait();
        let h = healthy.wait();
        sched.shutdown();
        assert_eq!(d.stopped, Some(gcln_engine::StopReason::Cancelled));
        assert_eq!(strip_ms(&h.events), strip_ms(&solo.events), "neighbor must be untouched");
        assert!(h.valid);
    }

    #[test]
    fn metrics_count_tasks_and_queue_wait() {
        let sched = Scheduler::new(SchedConfig::with_workers(2));
        sched.submit(quick_job("ps2")).wait();
        let m = sched.metrics();
        sched.shutdown();
        assert_eq!(m.jobs_submitted, 1);
        assert_eq!(m.jobs_completed, 1);
        assert!(m.tasks_executed >= 4, "trace+setup+train+extract+check at least");
        assert!(m.queue_wait.count >= 1);
        let kinds: Vec<&str> = m.tasks.iter().map(|(k, _)| k.as_str()).collect();
        assert!(kinds.contains(&"train") && kinds.contains(&"check"), "kinds: {kinds:?}");
        assert!(m.utilization() > 0.0);
    }
}
