//! # gcln-lang — the loop-program language of the G-CLN reproduction
//!
//! The NLA and Code2Inv benchmarks are small imperative programs; this
//! crate provides their source language end to end:
//!
//! - [`lexer`] / [`parser`]: a C-like surface syntax with `while`, `if`,
//!   compound assignment, `nondet()` choices, and `pre`/`post`/`inputs`
//!   headers.
//! - [`sema`]: name resolution to dense variable indices.
//! - [`interp`]: execution over `i128` (benchmark semantics) or `f64`
//!   (the paper's fractional-sampling relaxation, §4.3), with loop-head
//!   trace collection and single-iteration stepping for the checker.
//!
//! # Examples
//!
//! ```
//! use gcln_lang::{parse_program, interp::{run_program, RunConfig}};
//! let program = parse_program(
//!     "program cube; inputs a; pre a >= 0; post x == a * a * a;
//!      n = 0; x = 0; y = 1; z = 6;
//!      while (n != a) { n += 1; x += y; y += z; z += 6; }",
//! )?;
//! let run = run_program(&program, &[4i128], &RunConfig::default());
//! assert_eq!(run.env[program.var_id("x").unwrap()], 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::{BinOp, BoolExpr, CmpOp, Expr, Program, Stmt, VarId};
pub use interp::{run_program, Num, Outcome, Run, RunConfig, Snapshot};

use std::fmt;

/// Error from [`parse_program`]: either a parse failure or a resolution
/// failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Lexical or syntactic error.
    Parse(parser::ParseError),
    /// Name-resolution error.
    Resolve(sema::ResolveError),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Parse(e) => write!(f, "{e}"),
            ProgramError::Resolve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<parser::ParseError> for ProgramError {
    fn from(e: parser::ParseError) -> Self {
        ProgramError::Parse(e)
    }
}

impl From<sema::ResolveError> for ProgramError {
    fn from(e: sema::ResolveError) -> Self {
        ProgramError::Resolve(e)
    }
}

/// Parses and resolves a program in one step.
///
/// # Errors
///
/// Returns [`ProgramError`] on syntax or resolution failures.
///
/// # Examples
///
/// ```
/// use gcln_lang::parse_program;
/// let p = parse_program("inputs n; x = n + 1;")?;
/// assert_eq!(p.vars, vec!["n", "x"]);
/// # Ok::<(), gcln_lang::ProgramError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ProgramError> {
    let unresolved = parser::parse_unresolved(src)?;
    Ok(sema::resolve(unresolved)?)
}
