//! Recursive-descent parser for the loop-program language.
//!
//! Grammar sketch (see the repository README for the full syntax):
//!
//! ```text
//! program := ("program" IDENT ";")? header* stmt*
//! header  := "inputs" IDENT ("," IDENT)* ";" | "pre" bexpr ";" | "post" bexpr ";"
//! stmt    := IDENT ("=" | "+=" | "-=" | "*=" | "/=" | "%=") expr ";"
//!          | IDENT "++" ";" | IDENT "--" ";"
//!          | "if" "(" bexpr ")" block ("else" (block | if-stmt))?
//!          | "while" "(" bexpr ")" block
//!          | "assume" "(" bexpr ")" ";" | "break" ";"
//! block   := "{" stmt* "}" | stmt
//! bexpr   := band ("||" band)* ; band := batom ("&&" batom)*
//! batom   := "true" | "false" | "nondet" "(" ")" | "!" batom
//!          | "(" bexpr ")" | expr cmp expr
//! expr    := term (("+"|"-") term)* ; term := factor (("*"|"/"|"%") factor)*
//! factor  := INT | IDENT | IDENT "(" args ")" | "nondet" "(" expr "," expr ")"
//!          | "(" expr ")" | "-" factor
//! ```

use crate::ast::{BinOp, BoolExpr, CmpOp, Expr, Program, Stmt};
use crate::lexer::{tokenize, LexError, Spanned, Token};
use std::fmt;

/// Error produced when parsing fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line (0 when at end of input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { message: e.to_string(), line: e.line }
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    loop_counter: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |s| s.line)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn error<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { message: msg.into(), line: self.line() })
    }

    fn expect(&mut self, tok: &Token) -> PResult<()> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.error(format!("expected `{tok}`, found `{t}`"))
            }
            None => self.error(format!("expected `{tok}`, found end of input")),
        }
    }

    fn eat_ident(&mut self) -> PResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => {
                let d = other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into());
                self.error(format!("expected identifier, found `{d}`"))
            }
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_term()?;
        while let Some(Token::Op(c @ ('+' | '-'))) = self.peek() {
            let op = if *c == '+' { BinOp::Add } else { BinOp::Sub };
            self.pos += 1;
            let rhs = self.parse_term()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_factor()?;
        while let Some(Token::Op(c @ ('*' | '/' | '%'))) = self.peek() {
            let op = match c {
                '*' => BinOp::Mul,
                '/' => BinOp::Div,
                _ => BinOp::Rem,
            };
            self.pos += 1;
            let rhs = self.parse_factor()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> PResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Int(n))
            }
            Some(Token::Op('-')) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.parse_factor()?)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if name == "nondet" {
                        if args.len() != 2 {
                            return self
                                .error("nondet in expression position takes (lo, hi)");
                        }
                        let mut it = args.into_iter();
                        let lo = it.next().expect("len checked");
                        let hi = it.next().expect("len checked");
                        return Ok(Expr::NondetInt(Box::new(lo), Box::new(hi)));
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => {
                let d = other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into());
                self.error(format!("expected expression, found `{d}`"))
            }
        }
    }

    // ---- boolean expressions ----

    fn parse_bexpr(&mut self) -> PResult<BoolExpr> {
        let mut lhs = self.parse_band()?;
        while self.peek() == Some(&Token::OrOr) {
            self.pos += 1;
            let rhs = self.parse_band()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_band(&mut self) -> PResult<BoolExpr> {
        let mut lhs = self.parse_batom()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.pos += 1;
            let rhs = self.parse_batom()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_batom(&mut self) -> PResult<BoolExpr> {
        match self.peek().cloned() {
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(BoolExpr::Not(Box::new(self.parse_batom()?)))
            }
            Some(Token::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(BoolExpr::Const(true))
            }
            Some(Token::Ident(s)) if s == "false" => {
                self.pos += 1;
                Ok(BoolExpr::Const(false))
            }
            Some(Token::Ident(s)) if s == "nondet" && self.nondet_bool_ahead() => {
                self.pos += 3; // nondet ( )
                Ok(BoolExpr::Nondet)
            }
            Some(Token::LParen) => {
                // Could be a parenthesized boolean or a parenthesized
                // arithmetic expression starting a comparison; backtrack.
                let save = self.pos;
                self.pos += 1;
                if let Ok(inner) = self.parse_bexpr() {
                    if self.expect(&Token::RParen).is_ok()
                        && !matches!(self.peek(), Some(Token::Cmp(_)))
                    {
                        return Ok(inner);
                    }
                }
                self.pos = save;
                self.parse_comparison()
            }
            _ => self.parse_comparison(),
        }
    }

    fn nondet_bool_ahead(&self) -> bool {
        matches!(self.tokens.get(self.pos + 1).map(|s| &s.token), Some(Token::LParen))
            && matches!(self.tokens.get(self.pos + 2).map(|s| &s.token), Some(Token::RParen))
    }

    fn parse_comparison(&mut self) -> PResult<BoolExpr> {
        let lhs = self.parse_expr()?;
        let op = match self.peek() {
            Some(Token::Cmp(s)) => match *s {
                "==" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => unreachable!("lexer produces only the six comparison spellings"),
            },
            other => {
                let d = other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into());
                return self.error(format!("expected comparison operator, found `{d}`"));
            }
        };
        self.pos += 1;
        let rhs = self.parse_expr()?;
        Ok(BoolExpr::Cmp(op, lhs, rhs))
    }

    // ---- statements ----

    fn parse_block(&mut self) -> PResult<Vec<Stmt>> {
        if self.peek() == Some(&Token::LBrace) {
            self.pos += 1;
            let mut stmts = Vec::new();
            while self.peek() != Some(&Token::RBrace) {
                if self.peek().is_none() {
                    return self.error("unclosed block");
                }
                stmts.push(self.parse_stmt()?);
            }
            self.pos += 1;
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        match self.peek().cloned() {
            Some(Token::Ident(kw)) if kw == "if" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let cond = self.parse_bexpr()?;
                self.expect(&Token::RParen)?;
                let then_body = self.parse_block()?;
                let else_body = if self.eat_keyword("else") {
                    self.parse_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body })
            }
            Some(Token::Ident(kw)) if kw == "while" => {
                self.pos += 1;
                let id = self.loop_counter;
                self.loop_counter += 1;
                self.expect(&Token::LParen)?;
                let cond = self.parse_bexpr()?;
                self.expect(&Token::RParen)?;
                let body = self.parse_block()?;
                Ok(Stmt::While { id, cond, body })
            }
            Some(Token::Ident(kw)) if kw == "assume" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let cond = self.parse_bexpr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Assume(cond))
            }
            Some(Token::Ident(kw)) if kw == "break" => {
                self.pos += 1;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Break)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match self.advance() {
                    Some(Token::Assign) => {
                        let value = self.parse_expr()?;
                        self.expect(&Token::Semi)?;
                        Ok(Stmt::Assign { name, var: None, value })
                    }
                    Some(Token::CompoundAssign(c)) => {
                        let rhs = self.parse_expr()?;
                        self.expect(&Token::Semi)?;
                        let op = match c {
                            '+' => BinOp::Add,
                            '-' => BinOp::Sub,
                            '*' => BinOp::Mul,
                            '/' => BinOp::Div,
                            _ => BinOp::Rem,
                        };
                        let value = Expr::bin(op, Expr::Name(name.clone()), rhs);
                        Ok(Stmt::Assign { name, var: None, value })
                    }
                    Some(Token::PlusPlus) => {
                        self.expect(&Token::Semi)?;
                        let value = Expr::bin(BinOp::Add, Expr::Name(name.clone()), Expr::Int(1));
                        Ok(Stmt::Assign { name, var: None, value })
                    }
                    Some(Token::MinusMinus) => {
                        self.expect(&Token::Semi)?;
                        let value = Expr::bin(BinOp::Sub, Expr::Name(name.clone()), Expr::Int(1));
                        Ok(Stmt::Assign { name, var: None, value })
                    }
                    other => {
                        let d =
                            other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into());
                        self.error(format!("expected assignment after `{name}`, found `{d}`"))
                    }
                }
            }
            other => {
                let d = other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into());
                self.error(format!("expected statement, found `{d}`"))
            }
        }
    }

    fn parse_program(&mut self) -> PResult<Program> {
        let mut name = Program::DEFAULT_NAME.to_string();
        let mut inputs = Vec::new();
        let mut pre = BoolExpr::Const(true);
        let mut post = BoolExpr::Const(true);
        if self.eat_keyword("program") {
            name = self.eat_ident()?;
            self.expect(&Token::Semi)?;
        }
        loop {
            if self.eat_keyword("inputs") {
                loop {
                    inputs.push(self.eat_ident()?);
                    if self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Token::Semi)?;
            } else if self.eat_keyword("pre") {
                pre = self.parse_bexpr()?;
                self.expect(&Token::Semi)?;
            } else if self.eat_keyword("post") {
                post = self.parse_bexpr()?;
                self.expect(&Token::Semi)?;
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while self.peek().is_some() {
            body.push(self.parse_stmt()?);
        }
        Ok(Program {
            name,
            inputs,
            vars: Vec::new(),
            pre,
            post,
            body,
            num_loops: self.loop_counter,
        })
    }
}

/// Parses (but does not resolve) a program; see [`crate::parse_program`]
/// for the user-facing entry point that also runs name resolution.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors.
pub fn parse_unresolved(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0, loop_counter: 0 };
    parser.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, CmpOp};

    #[test]
    fn parses_minimal_program() {
        let p = parse_unresolved("x = 1;").unwrap();
        assert_eq!(p.body.len(), 1);
        assert_eq!(p.pre, BoolExpr::Const(true));
    }

    #[test]
    fn parses_header() {
        let p = parse_unresolved(
            "program sqrt; inputs n; pre n >= 0; post a * a <= n; a = 0;",
        )
        .unwrap();
        assert_eq!(p.name, "sqrt");
        assert_eq!(p.inputs, vec!["n"]);
        assert!(matches!(p.pre, BoolExpr::Cmp(CmpOp::Ge, _, _)));
        assert!(matches!(p.post, BoolExpr::Cmp(CmpOp::Le, _, _)));
    }

    #[test]
    fn parses_while_and_if() {
        let p = parse_unresolved(
            "while (x < 10) { if (x > 5) { x += 2; } else x ++; }",
        )
        .unwrap();
        let Stmt::While { id, cond, body } = &p.body[0] else {
            panic!("expected while");
        };
        assert_eq!(*id, 0);
        assert!(matches!(cond, BoolExpr::Cmp(CmpOp::Lt, _, _)));
        assert!(matches!(&body[0], Stmt::If { .. }));
        assert_eq!(p.num_loops, 1);
    }

    #[test]
    fn nested_loops_get_sequential_ids() {
        let p = parse_unresolved(
            "while (a < 1) { while (b < 2) { b++; } a++; } while (c < 3) c++;",
        )
        .unwrap();
        assert_eq!(p.num_loops, 3);
        assert!(p.find_loop(0).is_some());
        assert!(p.find_loop(1).is_some());
        assert!(p.find_loop(2).is_some());
        assert!(p.find_loop(3).is_none());
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_unresolved("x = 1 + 2 * 3;").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else { panic!() };
        let Expr::Bin(BinOp::Add, lhs, rhs) = value else {
            panic!("expected + at the top, got {value:?}");
        };
        assert_eq!(**lhs, Expr::Int(1));
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn compound_assign_desugars() {
        let p = parse_unresolved("x *= y + 1;").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else { panic!() };
        assert!(matches!(value, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parenthesized_bool_vs_arith() {
        // (a + b) < c — parens around arithmetic.
        let p = parse_unresolved("while ((a + b) < c) { a++; }").unwrap();
        let Stmt::While { cond, .. } = &p.body[0] else { panic!() };
        assert!(matches!(cond, BoolExpr::Cmp(CmpOp::Lt, _, _)));
        // ((a < b) && (c > d)) — nested boolean parens.
        let p2 = parse_unresolved("while (((a < b) && (c > d))) { a++; }").unwrap();
        let Stmt::While { cond, .. } = &p2.body[0] else { panic!() };
        assert!(matches!(cond, BoolExpr::And(_, _)));
    }

    #[test]
    fn nondet_forms() {
        let p = parse_unresolved("while (nondet()) { x = nondet(0, 10); }").unwrap();
        let Stmt::While { cond, body, .. } = &p.body[0] else { panic!() };
        assert_eq!(*cond, BoolExpr::Nondet);
        let Stmt::Assign { value, .. } = &body[0] else { panic!() };
        assert!(matches!(value, Expr::NondetInt(_, _)));
    }

    #[test]
    fn call_expression() {
        let p = parse_unresolved("g = gcd(x, y);").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else { panic!() };
        let Expr::Call(name, args) = value else { panic!() };
        assert_eq!(name, "gcd");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_unresolved("x = 1;\nwhile (x <) { }").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn assume_and_break() {
        let p = parse_unresolved("assume (x > 0); while (true) { break; }").unwrap();
        assert!(matches!(p.body[0], Stmt::Assume(_)));
        let Stmt::While { body, .. } = &p.body[1] else { panic!() };
        assert_eq!(body[0], Stmt::Break);
    }

    #[test]
    fn unary_minus_and_parens() {
        let p = parse_unresolved("x = -(y + 2) * 3;").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else { panic!() };
        assert!(matches!(value, Expr::Bin(BinOp::Mul, _, _)));
    }
}
