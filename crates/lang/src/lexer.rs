//! Lexer for the loop-program language.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (non-negative; unary minus is a parser concern).
    Int(i128),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=` `-=` `*=` `/=` `%=` compound assignment (the operator part).
    CompoundAssign(char),
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+` `-` `*` `/` `%`
    Op(char),
    /// `==` `!=` `<` `<=` `>` `>=`
    Cmp(&'static str),
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, "="),
            Token::CompoundAssign(c) => write!(f, "{c}="),
            Token::PlusPlus => write!(f, "++"),
            Token::MinusMinus => write!(f, "--"),
            Token::Op(c) => write!(f, "{c}"),
            Token::Cmp(s) => write!(f, "{s}"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
        }
    }
}

/// A token together with its source line (1-based), for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Error produced when the input contains characters outside the language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} on line {}", self.ch, self.line)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes source text. `//` line comments and `/* */` block comments are
/// skipped.
///
/// # Errors
///
/// Returns [`LexError`] on any character that cannot start a token.
///
/// # Examples
///
/// ```
/// use gcln_lang::lexer::{tokenize, Token};
/// let toks = tokenize("x += 2; // bump").unwrap();
/// assert_eq!(toks[0].token, Token::Ident("x".into()));
/// assert_eq!(toks[1].token, Token::CompoundAssign('+'));
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        let peek = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if peek == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if peek == Some('*') => {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(chars.len());
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i128 = text.parse().expect("digit runs fit in i128 for benchmark inputs");
                tokens.push(Spanned { token: Token::Int(n), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Spanned { token: Token::Ident(text), line });
            }
            '(' => {
                tokens.push(Spanned { token: Token::LParen, line });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, line });
                i += 1;
            }
            '{' => {
                tokens.push(Spanned { token: Token::LBrace, line });
                i += 1;
            }
            '}' => {
                tokens.push(Spanned { token: Token::RBrace, line });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned { token: Token::Semi, line });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Comma, line });
                i += 1;
            }
            '+' if peek == Some('+') => {
                tokens.push(Spanned { token: Token::PlusPlus, line });
                i += 2;
            }
            '-' if peek == Some('-') => {
                tokens.push(Spanned { token: Token::MinusMinus, line });
                i += 2;
            }
            '+' | '-' | '*' | '/' | '%' if peek == Some('=') => {
                tokens.push(Spanned { token: Token::CompoundAssign(c), line });
                i += 2;
            }
            '+' | '-' | '*' | '/' | '%' => {
                tokens.push(Spanned { token: Token::Op(c), line });
                i += 1;
            }
            '=' if peek == Some('=') => {
                tokens.push(Spanned { token: Token::Cmp("=="), line });
                i += 2;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Assign, line });
                i += 1;
            }
            '!' if peek == Some('=') => {
                tokens.push(Spanned { token: Token::Cmp("!="), line });
                i += 2;
            }
            '!' => {
                tokens.push(Spanned { token: Token::Bang, line });
                i += 1;
            }
            '<' if peek == Some('=') => {
                tokens.push(Spanned { token: Token::Cmp("<="), line });
                i += 2;
            }
            '<' => {
                tokens.push(Spanned { token: Token::Cmp("<"), line });
                i += 1;
            }
            '>' if peek == Some('=') => {
                tokens.push(Spanned { token: Token::Cmp(">="), line });
                i += 2;
            }
            '>' => {
                tokens.push(Spanned { token: Token::Cmp(">"), line });
                i += 1;
            }
            '&' if peek == Some('&') => {
                tokens.push(Spanned { token: Token::AndAnd, line });
                i += 2;
            }
            '|' if peek == Some('|') => {
                tokens.push(Spanned { token: Token::OrOr, line });
                i += 2;
            }
            other => return Err(LexError { ch: other, line }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("x = 42;"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(42),
                Token::Semi
            ]
        );
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(
            toks("a <= b == c != d >= e < f > g"),
            vec![
                Token::Ident("a".into()),
                Token::Cmp("<="),
                Token::Ident("b".into()),
                Token::Cmp("=="),
                Token::Ident("c".into()),
                Token::Cmp("!="),
                Token::Ident("d".into()),
                Token::Cmp(">="),
                Token::Ident("e".into()),
                Token::Cmp("<"),
                Token::Ident("f".into()),
                Token::Cmp(">"),
                Token::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn compound_and_incdec() {
        assert_eq!(
            toks("x += 1; y++; z--;"),
            vec![
                Token::Ident("x".into()),
                Token::CompoundAssign('+'),
                Token::Int(1),
                Token::Semi,
                Token::Ident("y".into()),
                Token::PlusPlus,
                Token::Semi,
                Token::Ident("z".into()),
                Token::MinusMinus,
                Token::Semi,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("x // hi\n= /* there \n over lines */ 1"), toks("x = 1"));
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn rejects_garbage() {
        let err = tokenize("x = $;").unwrap_err();
        assert_eq!(err.ch, '$');
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn logical_ops() {
        assert_eq!(
            toks("a && b || !c"),
            vec![
                Token::Ident("a".into()),
                Token::AndAnd,
                Token::Ident("b".into()),
                Token::OrOr,
                Token::Bang,
                Token::Ident("c".into()),
            ]
        );
    }
}
