//! Interpreters and trace collection.
//!
//! Programs run over any [`Num`] domain. Two are provided:
//!
//! - `i128` — the benchmark programs' native integer semantics, with
//!   overflow-checked arithmetic and C-style truncating division.
//! - `f64` — the paper's *fractional sampling* relaxation (§4.3): the same
//!   operations on the real domain, so traces can be collected from
//!   non-integer initial values. Division/remainder keep their discrete
//!   behaviour relative to their inputs (truncation), as the relaxation
//!   requires.
//!
//! A trace records the full variable environment at **every loop-head
//! test**, which matches the paper's instrumentation (Fig. 4a: a log at
//! the top of the body each iteration, plus one after exit — i.e. one per
//! guard evaluation).

use crate::ast::{BinOp, BoolExpr, CmpOp, Expr, Program, Stmt, VarId};
use std::fmt;

/// Numeric domains a program can execute over.
///
/// This trait is sealed in spirit: the two implementations (`i128`, `f64`)
/// cover the paper's integer semantics and its real relaxation.
pub trait Num: Copy + PartialEq + PartialOrd + fmt::Debug + fmt::Display {
    /// Injects an integer constant.
    fn from_i128(n: i128) -> Self;
    /// Checked addition (`None` = overflow / non-finite).
    fn add_checked(self, other: Self) -> Option<Self>;
    /// Checked subtraction.
    fn sub_checked(self, other: Self) -> Option<Self>;
    /// Checked multiplication.
    fn mul_checked(self, other: Self) -> Option<Self>;
    /// Checked truncating division (`None` on division by zero/overflow).
    fn div_trunc_checked(self, other: Self) -> Option<Self>;
    /// Checked truncating remainder.
    fn rem_trunc_checked(self, other: Self) -> Option<Self>;
    /// Lossy view as `f64` (used when exporting traces for training).
    fn to_f64(self) -> f64;
    /// Exact integer view, if the value is integral (used by `gcd`).
    fn as_integer(self) -> Option<i128>;
}

impl Num for i128 {
    fn from_i128(n: i128) -> Self {
        n
    }
    fn add_checked(self, other: Self) -> Option<Self> {
        self.checked_add(other)
    }
    fn sub_checked(self, other: Self) -> Option<Self> {
        self.checked_sub(other)
    }
    fn mul_checked(self, other: Self) -> Option<Self> {
        self.checked_mul(other)
    }
    fn div_trunc_checked(self, other: Self) -> Option<Self> {
        self.checked_div(other)
    }
    fn rem_trunc_checked(self, other: Self) -> Option<Self> {
        self.checked_rem(other)
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn as_integer(self) -> Option<i128> {
        Some(self)
    }
}

impl Num for f64 {
    fn from_i128(n: i128) -> Self {
        n as f64
    }
    fn add_checked(self, other: Self) -> Option<Self> {
        let r = self + other;
        r.is_finite().then_some(r)
    }
    fn sub_checked(self, other: Self) -> Option<Self> {
        let r = self - other;
        r.is_finite().then_some(r)
    }
    fn mul_checked(self, other: Self) -> Option<Self> {
        let r = self * other;
        r.is_finite().then_some(r)
    }
    fn div_trunc_checked(self, other: Self) -> Option<Self> {
        if other == 0.0 {
            return None;
        }
        let r = (self / other).trunc();
        r.is_finite().then_some(r)
    }
    fn rem_trunc_checked(self, other: Self) -> Option<Self> {
        let q = self.div_trunc_checked(other)?;
        let r = self - other * q;
        r.is_finite().then_some(r)
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn as_integer(self) -> Option<i128> {
        (self.fract() == 0.0 && self.abs() < 1e30).then_some(self as i128)
    }
}

/// Deterministic source for `nondet()` / `nondet(lo, hi)` (SplitMix64).
///
/// Kept dependency-free so `gcln-lang` stands alone; callers that want
/// varied executions supply different seeds.
#[derive(Clone, Debug)]
pub struct Nondet {
    state: u64,
}

impl Nondet {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Nondet {
        Nondet { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A nondeterministic boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A nondeterministic integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty nondet range");
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// Why an execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion.
    Completed,
    /// The precondition or an `assume` failed; the run is discarded.
    AssumeFailed,
    /// The step budget was exhausted (probable non-termination).
    StepLimit,
    /// Arithmetic fault: division by zero, overflow, or a non-integral
    /// argument to an integer-only builtin.
    ArithError,
}

/// One recorded loop-head state.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot<N> {
    /// Which `while` loop (dense source-order id).
    pub loop_id: usize,
    /// The full environment, indexed by [`VarId`].
    pub state: Vec<N>,
}

/// The result of running a program.
#[derive(Clone, Debug, PartialEq)]
pub struct Run<N> {
    /// Loop-head snapshots in execution order.
    pub trace: Vec<Snapshot<N>>,
    /// Final environment (meaningful when `outcome == Completed`).
    pub env: Vec<N>,
    /// Why execution stopped.
    pub outcome: Outcome,
}

/// Execution limits and nondeterminism seed.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Maximum number of statements executed before [`Outcome::StepLimit`].
    pub max_steps: usize,
    /// Seed for `nondet` choices.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { max_steps: 1_000_000, seed: 0 }
    }
}

/// Arithmetic fault raised during evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArithFault;

enum Flow {
    Normal,
    Break,
    Stop(Outcome),
}

struct Interp<N> {
    env: Vec<N>,
    trace: Vec<Snapshot<N>>,
    nondet: Nondet,
    fuel: usize,
    record: bool,
}

impl<N: Num> Interp<N> {
    fn eval_expr(&mut self, e: &Expr) -> Result<N, ArithFault> {
        match e {
            Expr::Int(n) => Ok(N::from_i128(*n)),
            Expr::Var(id) => Ok(self.env[*id]),
            Expr::Name(n) => unreachable!("unresolved name `{n}` reached the interpreter"),
            Expr::Neg(a) => {
                let v = self.eval_expr(a)?;
                N::from_i128(0).sub_checked(v).ok_or(ArithFault)
            }
            Expr::Bin(op, a, b) => {
                let l = self.eval_expr(a)?;
                let r = self.eval_expr(b)?;
                let result = match op {
                    BinOp::Add => l.add_checked(r),
                    BinOp::Sub => l.sub_checked(r),
                    BinOp::Mul => l.mul_checked(r),
                    BinOp::Div => l.div_trunc_checked(r),
                    BinOp::Rem => l.rem_trunc_checked(r),
                };
                result.ok_or(ArithFault)
            }
            Expr::Call(name, args) => {
                let vals: Vec<N> = args
                    .iter()
                    .map(|a| self.eval_expr(a))
                    .collect::<Result<_, _>>()?;
                call_builtin(name, &vals)
            }
            Expr::NondetInt(lo, hi) => {
                let lo = self.eval_expr(lo)?.as_integer().ok_or(ArithFault)?;
                let hi = self.eval_expr(hi)?.as_integer().ok_or(ArithFault)?;
                if lo > hi {
                    return Err(ArithFault);
                }
                Ok(N::from_i128(self.nondet.next_range(lo, hi)))
            }
        }
    }

    fn eval_bool(&mut self, b: &BoolExpr) -> Result<bool, ArithFault> {
        match b {
            BoolExpr::Const(v) => Ok(*v),
            BoolExpr::Nondet => Ok(self.nondet.next_bool()),
            BoolExpr::Not(a) => Ok(!self.eval_bool(a)?),
            BoolExpr::And(a, b) => Ok(self.eval_bool(a)? && self.eval_bool(b)?),
            BoolExpr::Or(a, b) => Ok(self.eval_bool(a)? || self.eval_bool(b)?),
            BoolExpr::Cmp(op, l, r) => {
                let lv = self.eval_expr(l)?;
                let rv = self.eval_expr(r)?;
                Ok(compare(*op, lv, rv))
            }
        }
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Flow {
        for s in stmts {
            match self.exec_stmt(s) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Flow {
        if self.fuel == 0 {
            return Flow::Stop(Outcome::StepLimit);
        }
        self.fuel -= 1;
        match s {
            Stmt::Assign { var, value, .. } => {
                let id: VarId = var.expect("program must be resolved before execution");
                match self.eval_expr(value) {
                    Ok(v) => {
                        self.env[id] = v;
                        Flow::Normal
                    }
                    Err(ArithFault) => Flow::Stop(Outcome::ArithError),
                }
            }
            Stmt::If { cond, then_body, else_body } => match self.eval_bool(cond) {
                Ok(true) => self.exec_stmts(then_body),
                Ok(false) => self.exec_stmts(else_body),
                Err(ArithFault) => Flow::Stop(Outcome::ArithError),
            },
            Stmt::While { id, cond, body } => loop {
                if self.record {
                    self.trace.push(Snapshot { loop_id: *id, state: self.env.clone() });
                }
                if self.fuel == 0 {
                    return Flow::Stop(Outcome::StepLimit);
                }
                self.fuel -= 1;
                match self.eval_bool(cond) {
                    Ok(true) => match self.exec_stmts(body) {
                        Flow::Normal => {}
                        Flow::Break => return Flow::Normal,
                        stop => return stop,
                    },
                    Ok(false) => return Flow::Normal,
                    Err(ArithFault) => return Flow::Stop(Outcome::ArithError),
                }
            },
            Stmt::Assume(cond) => match self.eval_bool(cond) {
                Ok(true) => Flow::Normal,
                Ok(false) => Flow::Stop(Outcome::AssumeFailed),
                Err(ArithFault) => Flow::Stop(Outcome::ArithError),
            },
            Stmt::Break => Flow::Break,
        }
    }
}

fn call_builtin<N: Num>(name: &str, args: &[N]) -> Result<N, ArithFault> {
    match name {
        "gcd" => {
            let a = args[0].as_integer().ok_or(ArithFault)?;
            let b = args[1].as_integer().ok_or(ArithFault)?;
            let mut a = a.unsigned_abs();
            let mut b = b.unsigned_abs();
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            Ok(N::from_i128(a as i128))
        }
        "min" => Ok(if args[0] <= args[1] { args[0] } else { args[1] }),
        "max" => Ok(if args[0] >= args[1] { args[0] } else { args[1] }),
        "abs" => {
            if args[0] >= N::from_i128(0) {
                Ok(args[0])
            } else {
                N::from_i128(0).sub_checked(args[0]).ok_or(ArithFault)
            }
        }
        other => unreachable!("unknown builtin `{other}` survived resolution"),
    }
}

fn compare<N: Num>(op: CmpOp, l: N, r: N) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
    }
}

/// Runs a resolved program on the given input values, collecting a trace.
///
/// Inputs are bound positionally to [`Program::inputs`]; local variables
/// start at zero. The precondition is treated as an implicit `assume`.
///
/// # Panics
///
/// Panics if `inputs.len() != program.inputs.len()` or the program is
/// unresolved.
///
/// # Examples
///
/// ```
/// use gcln_lang::{parse_program, interp::{run_program, RunConfig, Outcome}};
/// let p = parse_program(
///     "inputs n; pre n >= 0; post x == n * n;
///      x = 0; i = 0;
///      while (i != n) { i = i + 1; x = x + 2 * i - 1; }",
/// ).unwrap();
/// let run = run_program(&p, &[5i128], &RunConfig::default());
/// assert_eq!(run.outcome, Outcome::Completed);
/// assert_eq!(run.env[p.var_id("x").unwrap()], 25);
/// assert_eq!(run.trace.len(), 6); // one snapshot per guard test
/// ```
pub fn run_program<N: Num>(program: &Program, inputs: &[N], config: &RunConfig) -> Run<N> {
    assert_eq!(inputs.len(), program.inputs.len(), "wrong number of inputs");
    let mut env = vec![N::from_i128(0); program.num_vars()];
    env[..inputs.len()].copy_from_slice(inputs);
    let mut interp = Interp {
        env,
        trace: Vec::new(),
        nondet: Nondet::new(config.seed),
        fuel: config.max_steps,
        record: true,
    };
    let pre = program.pre.clone();
    let outcome = match interp.eval_bool(&pre) {
        Ok(false) => Outcome::AssumeFailed,
        Err(ArithFault) => Outcome::ArithError,
        Ok(true) => match interp.exec_stmts(&program.body) {
            Flow::Normal | Flow::Break => Outcome::Completed,
            Flow::Stop(o) => o,
        },
    };
    Run { trace: interp.trace, env: interp.env, outcome }
}

/// Evaluates a boolean expression in a given environment (no trace, no
/// stepping). `nondet()` uses the provided seed.
///
/// Returns `None` on arithmetic faults.
pub fn eval_bool_in<N: Num>(b: &BoolExpr, env: &[N], seed: u64) -> Option<bool> {
    let mut interp = Interp {
        env: env.to_vec(),
        trace: Vec::new(),
        nondet: Nondet::new(seed),
        fuel: usize::MAX,
        record: false,
    };
    interp.eval_bool(b).ok()
}

/// Executes the body of loop `loop_id` once from `state` (assuming the
/// guard already held), returning the successor state.
///
/// Inner loops inside the body run to completion (bounded by
/// `config.max_steps`). Used by the checker's bounded consecution test.
///
/// # Panics
///
/// Panics if the loop id does not exist or the program is unresolved.
pub fn step_loop<N: Num>(
    program: &Program,
    loop_id: usize,
    state: &[N],
    config: &RunConfig,
) -> Result<Vec<N>, Outcome> {
    let Some(Stmt::While { body, .. }) = program.find_loop(loop_id) else {
        panic!("loop {loop_id} not found in `{}`", program.name);
    };
    let mut interp = Interp {
        env: state.to_vec(),
        trace: Vec::new(),
        nondet: Nondet::new(config.seed),
        fuel: config.max_steps,
        record: false,
    };
    match interp.exec_stmts(body) {
        Flow::Normal | Flow::Break => Ok(interp.env),
        Flow::Stop(o) => Err(o),
    }
}

/// Evaluates a loop guard in a given state.
///
/// Returns `None` on arithmetic faults (or if the loop id is unknown).
pub fn loop_guard_holds<N: Num>(
    program: &Program,
    loop_id: usize,
    state: &[N],
    seed: u64,
) -> Option<bool> {
    let Some(Stmt::While { cond, .. }) = program.find_loop(loop_id) else {
        return None;
    };
    eval_bool_in(cond, state, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const SQRT_SRC: &str = "program sqrt1; inputs n; pre n >= 0;
        post a * a <= n && n < (a + 1) * (a + 1);
        a = 0; s = 1; t = 1;
        while (s <= n) { a = a + 1; t = t + 2; s = s + t; }";

    #[test]
    fn sqrt_program_runs_and_satisfies_post() {
        let p = parse_program(SQRT_SRC).unwrap();
        for n in 0..50i128 {
            let run = run_program(&p, &[n], &RunConfig::default());
            assert_eq!(run.outcome, Outcome::Completed);
            assert_eq!(
                eval_bool_in(&p.post, &run.env, 0),
                Some(true),
                "post failed for n={n}"
            );
            let a = run.env[p.var_id("a").unwrap()];
            assert_eq!(a, (n as f64).sqrt().floor() as i128);
        }
    }

    #[test]
    fn trace_matches_paper_figure_4b() {
        // Figure 4b: sqrt on n = 12 visits (a, s, t) = (0,1,1), (1,4,3),
        // (2,9,5), (3,16,7).
        let p = parse_program(SQRT_SRC).unwrap();
        let run = run_program(&p, &[12i128], &RunConfig::default());
        let ids: Vec<usize> = ["a", "s", "t"]
            .iter()
            .map(|v| p.var_id(v).unwrap())
            .collect();
        let rows: Vec<Vec<i128>> = run
            .trace
            .iter()
            .map(|s| ids.iter().map(|&i| s.state[i]).collect())
            .collect();
        assert_eq!(
            rows,
            vec![
                vec![0, 1, 1],
                vec![1, 4, 3],
                vec![2, 9, 5],
                vec![3, 16, 7],
            ]
        );
    }

    #[test]
    fn fractional_execution_matches_integer_on_integers() {
        let p = parse_program(SQRT_SRC).unwrap();
        let int_run = run_program(&p, &[20i128], &RunConfig::default());
        let real_run = run_program(&p, &[20.0f64], &RunConfig::default());
        assert_eq!(int_run.trace.len(), real_run.trace.len());
        for (a, b) in int_run.trace.iter().zip(&real_run.trace) {
            for (x, y) in a.state.iter().zip(&b.state) {
                assert_eq!(*x as f64, *y);
            }
        }
    }

    #[test]
    fn fractional_execution_from_real_inputs() {
        // ps2: x += y after y++; runs on fractional start just as well.
        let p = parse_program(
            "inputs k; pre k >= 0; x = 0; y = 0;
             while (y < k) { y = y + 1; x = x + y; }",
        )
        .unwrap();
        let run = run_program(&p, &[3.5f64], &RunConfig::default());
        assert_eq!(run.outcome, Outcome::Completed);
        let x = run.env[p.var_id("x").unwrap()];
        // y goes 1, 2, 3, 4 -> x = 10 (loop exits at y=4 >= 3.5).
        assert_eq!(x, 10.0);
    }

    #[test]
    fn precondition_acts_as_assume() {
        let p = parse_program("inputs n; pre n >= 0; x = n;").unwrap();
        let run = run_program(&p, &[-3i128], &RunConfig::default());
        assert_eq!(run.outcome, Outcome::AssumeFailed);
    }

    #[test]
    fn division_by_zero_is_arith_error() {
        let p = parse_program("inputs n; x = 1 / n;").unwrap();
        let run = run_program(&p, &[0i128], &RunConfig::default());
        assert_eq!(run.outcome, Outcome::ArithError);
    }

    #[test]
    fn truncating_division_matches_c() {
        let p = parse_program("inputs a, b; q = a / b; r = a % b;").unwrap();
        let run = run_program(&p, &[-7i128, 2], &RunConfig::default());
        assert_eq!(run.env[p.var_id("q").unwrap()], -3);
        assert_eq!(run.env[p.var_id("r").unwrap()], -1);
    }

    #[test]
    fn step_limit_catches_divergence() {
        let p = parse_program("x = 0; while (x >= 0) { x = x + 1; }").unwrap();
        let run = run_program(&p, &[] as &[i128], &RunConfig { max_steps: 1000, seed: 0 });
        assert_eq!(run.outcome, Outcome::StepLimit);
    }

    #[test]
    fn gcd_builtin() {
        let p = parse_program("inputs a, b; g = gcd(a, b);").unwrap();
        let run = run_program(&p, &[54i128, 24], &RunConfig::default());
        assert_eq!(run.env[p.var_id("g").unwrap()], 6);
        let run = run_program(&p, &[0i128, 0], &RunConfig::default());
        assert_eq!(run.env[p.var_id("g").unwrap()], 0);
    }

    #[test]
    fn nondet_is_deterministic_per_seed() {
        let p = parse_program("x = nondet(0, 100); y = nondet(0, 100);").unwrap();
        let a = run_program(&p, &[] as &[i128], &RunConfig { max_steps: 100, seed: 7 });
        let b = run_program(&p, &[] as &[i128], &RunConfig { max_steps: 100, seed: 7 });
        let c = run_program(&p, &[] as &[i128], &RunConfig { max_steps: 100, seed: 8 });
        assert_eq!(a.env, b.env);
        assert_ne!(a.env, c.env, "different seeds should (almost surely) differ");
    }

    #[test]
    fn step_loop_advances_one_iteration() {
        let p = parse_program(SQRT_SRC).unwrap();
        // State (n, a, s, t) = (30, 2, 9, 5): one body execution gives (30, 3, 16, 7).
        let state = vec![30i128, 2, 9, 5];
        let next = step_loop(&p, 0, &state, &RunConfig::default()).unwrap();
        assert_eq!(next, vec![30, 3, 16, 7]);
        assert_eq!(loop_guard_holds(&p, 0, &state, 0), Some(true));
        assert_eq!(loop_guard_holds(&p, 0, &[3i128, 2, 9, 5], 0), Some(false));
    }

    #[test]
    fn break_exits_innermost_loop() {
        let p = parse_program(
            "x = 0; y = 0;
             while (x < 3) {
               x = x + 1;
               while (true) { y = y + 1; break; }
             }",
        )
        .unwrap();
        let run = run_program(&p, &[] as &[i128], &RunConfig::default());
        assert_eq!(run.outcome, Outcome::Completed);
        assert_eq!(run.env[p.var_id("y").unwrap()], 3);
    }

    #[test]
    fn overflow_detected() {
        let p = parse_program("x = 1; while (x > 0) { x = x * 2; }").unwrap();
        let run = run_program(&p, &[] as &[i128], &RunConfig::default());
        assert_eq!(run.outcome, Outcome::ArithError);
    }

    #[test]
    fn min_max_abs_builtins() {
        let p = parse_program("a = min(3, -2); b = max(3, -2); c = abs(-5);").unwrap();
        let run = run_program(&p, &[] as &[i128], &RunConfig::default());
        assert_eq!(run.env[p.var_id("a").unwrap()], -2);
        assert_eq!(run.env[p.var_id("b").unwrap()], 3);
        assert_eq!(run.env[p.var_id("c").unwrap()], 5);
    }
}
