//! Abstract syntax for the loop-program language.
//!
//! The language covers exactly the fragment the NLA and Code2Inv benchmarks
//! need: integer arithmetic with truncating division/remainder, external
//! function calls (`gcd`), boolean conditions, `if`/`else`, (possibly
//! nested) `while` loops, and nondeterministic choices for the Code2Inv-
//! style linear problems.
//!
//! Variables are resolved to dense indices ([`VarId`]) by
//! [`crate::sema::resolve`]; the parser produces name-based ASTs and the
//! resolver rewrites them in place.

use std::fmt;

/// A resolved variable index into the interpreter environment.
pub type VarId = usize;

/// Binary arithmetic operators.
///
/// `Div` and `Rem` follow C semantics (truncation toward zero), matching
/// the benchmark programs' source language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Truncating remainder.
    Rem,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The comparison with operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i128),
    /// Variable reference by name (pre-resolution).
    Name(String),
    /// Variable reference by resolved index (post-resolution).
    Var(VarId),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// External/builtin function call, e.g. `gcd(a, b)`.
    Call(String, Vec<Expr>),
    /// Nondeterministic integer in an inclusive range: `nondet(lo, hi)`.
    NondetInt(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }
}

/// Boolean expressions (conditions, pre/postconditions).
#[derive(Clone, Debug, PartialEq)]
pub enum BoolExpr {
    /// Literal truth.
    Const(bool),
    /// Comparison between arithmetic expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Nondeterministic boolean (`nondet()`), used by Code2Inv-style
    /// programs for unknown branches/loop exits.
    Nondet,
}

impl BoolExpr {
    /// Convenience constructor for a comparison.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(op, lhs, rhs)
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `x = e;` (variable by name pre-resolution, by id after).
    Assign {
        /// Target variable name (source form).
        name: String,
        /// Resolved target (filled by the resolver).
        var: Option<VarId>,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (c) { .. } else { .. }`.
    If {
        /// Branch condition.
        cond: BoolExpr,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }`. Each loop gets a dense id in source order,
    /// assigned by the parser; traces are recorded per loop id.
    While {
        /// Dense loop identifier (source order).
        id: usize,
        /// Loop guard.
        cond: BoolExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `assume c;` — silently abandons executions violating `c`
    /// (used to encode input constraints inside nondeterministic programs).
    Assume(BoolExpr),
    /// `break;` — exits the innermost enclosing loop.
    Break,
}

/// A parsed (and possibly resolved) loop program.
///
/// Construct via [`crate::parse_program`] or the builder-style helpers in
/// tests.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name (from the `program <name>;` header).
    pub name: String,
    /// Input parameter names, in declaration order. Inputs are the
    /// variables supplied to [`crate::interp::run_program`].
    pub inputs: Vec<String>,
    /// All variable names (inputs first), filled by the resolver;
    /// indices correspond to [`VarId`]s.
    pub vars: Vec<String>,
    /// Precondition over the inputs (defaults to `true`).
    pub pre: BoolExpr,
    /// Postcondition over the final state (defaults to `true`).
    pub post: BoolExpr,
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Number of `while` loops (dense ids `0..num_loops`).
    pub num_loops: usize,
}

impl Program {
    /// The name the parser assigns when the source has no
    /// `program <name>;` header. Front ends (e.g. spec builders) test
    /// against this to substitute a file-derived fallback name.
    pub const DEFAULT_NAME: &'static str = "anonymous";

    /// Whether the program carries an explicit `program <name>;` header
    /// (as opposed to the parser-assigned default). Known limitation: a
    /// program literally named `anonymous` is indistinguishable from an
    /// unnamed one and is treated as unnamed — the header carries no
    /// information beyond the name, so a front end's fallback name is
    /// an equally good label.
    pub fn has_explicit_name(&self) -> bool {
        self.name != Self::DEFAULT_NAME
    }

    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v == name)
    }

    /// The number of variables in the resolved environment.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Finds the `While` statement with the given loop id, if any.
    pub fn find_loop(&self, id: usize) -> Option<&Stmt> {
        fn walk(stmts: &[Stmt], id: usize) -> Option<&Stmt> {
            for s in stmts {
                match s {
                    Stmt::While { id: lid, body, .. } => {
                        if *lid == id {
                            return Some(s);
                        }
                        if let Some(found) = walk(body, id) {
                            return Some(found);
                        }
                    }
                    Stmt::If { then_body, else_body, .. } => {
                        if let Some(found) = walk(then_body, id) {
                            return Some(found);
                        }
                        if let Some(found) = walk(else_body, id) {
                            return Some(found);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        walk(&self.body, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn display_ops() {
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(CmpOp::Ge.to_string(), ">=");
    }
}
