//! Name resolution and semantic checks.
//!
//! Turns the parser's name-based AST into an index-based one: inputs get
//! the first [`VarId`](crate::ast::VarId)s in declaration order, then local
//! variables in order of first assignment. Expressions referencing names
//! that are neither inputs nor ever assigned are rejected, as are calls to
//! unknown functions or with wrong arity.
//!
//! Locals start at 0 before their first assignment (the benchmark programs
//! always initialize before use; the interpreter enforces nothing further).

use crate::ast::{BoolExpr, Expr, Program, Stmt};
use std::collections::HashMap;
use std::fmt;

/// The builtin/external functions visible to programs: name and arity.
///
/// `gcd` is the external function the paper's four gcd/lcm problems need
/// (§5.3); `min`/`max`/`abs` round out the benchmark fragment.
pub const BUILTINS: &[(&str, usize)] = &[("gcd", 2), ("min", 2), ("max", 2), ("abs", 1)];

/// Error produced by name resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// An expression referenced a variable that is neither an input nor
    /// ever assigned.
    UnknownVariable(String),
    /// A call to a function not in [`BUILTINS`].
    UnknownFunction(String),
    /// A builtin called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        name: String,
        /// Arity declared in [`BUILTINS`].
        expected: usize,
        /// Arity at the call site.
        found: usize,
    },
    /// The same name was declared as an input twice.
    DuplicateInput(String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            ResolveError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ResolveError::WrongArity { name, expected, found } => {
                write!(f, "function `{name}` expects {expected} arguments, found {found}")
            }
            ResolveError::DuplicateInput(n) => write!(f, "duplicate input `{n}`"),
        }
    }
}

impl std::error::Error for ResolveError {}

struct Resolver {
    ids: HashMap<String, usize>,
    names: Vec<String>,
}

impl Resolver {
    fn declare(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn collect_assigned(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign { name, .. } => {
                    self.declare(name);
                }
                Stmt::If { then_body, else_body, .. } => {
                    self.collect_assigned(then_body);
                    self.collect_assigned(else_body);
                }
                Stmt::While { body, .. } => self.collect_assigned(body),
                Stmt::Assume(_) | Stmt::Break => {}
            }
        }
    }

    fn resolve_expr(&self, e: &mut Expr) -> Result<(), ResolveError> {
        match e {
            Expr::Int(_) | Expr::Var(_) => Ok(()),
            Expr::Name(name) => {
                let id = self
                    .ids
                    .get(name.as_str())
                    .copied()
                    .ok_or_else(|| ResolveError::UnknownVariable(name.clone()))?;
                *e = Expr::Var(id);
                Ok(())
            }
            Expr::Bin(_, a, b) => {
                self.resolve_expr(a)?;
                self.resolve_expr(b)
            }
            Expr::Neg(a) => self.resolve_expr(a),
            Expr::Call(name, args) => {
                let arity = BUILTINS
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, a)| *a)
                    .ok_or_else(|| ResolveError::UnknownFunction(name.clone()))?;
                if args.len() != arity {
                    return Err(ResolveError::WrongArity {
                        name: name.clone(),
                        expected: arity,
                        found: args.len(),
                    });
                }
                for a in args {
                    self.resolve_expr(a)?;
                }
                Ok(())
            }
            Expr::NondetInt(lo, hi) => {
                self.resolve_expr(lo)?;
                self.resolve_expr(hi)
            }
        }
    }

    fn resolve_bool(&self, b: &mut BoolExpr) -> Result<(), ResolveError> {
        match b {
            BoolExpr::Const(_) | BoolExpr::Nondet => Ok(()),
            BoolExpr::Cmp(_, l, r) => {
                self.resolve_expr(l)?;
                self.resolve_expr(r)
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                self.resolve_bool(a)?;
                self.resolve_bool(b)
            }
            BoolExpr::Not(a) => self.resolve_bool(a),
        }
    }

    fn resolve_stmts(&self, stmts: &mut [Stmt]) -> Result<(), ResolveError> {
        for s in stmts {
            match s {
                Stmt::Assign { name, var, value } => {
                    *var = Some(
                        self.ids
                            .get(name.as_str())
                            .copied()
                            .expect("assignment targets pre-declared in collect_assigned"),
                    );
                    self.resolve_expr(value)?;
                }
                Stmt::If { cond, then_body, else_body } => {
                    self.resolve_bool(cond)?;
                    self.resolve_stmts(then_body)?;
                    self.resolve_stmts(else_body)?;
                }
                Stmt::While { cond, body, .. } => {
                    self.resolve_bool(cond)?;
                    self.resolve_stmts(body)?;
                }
                Stmt::Assume(cond) => self.resolve_bool(cond)?,
                Stmt::Break => {}
            }
        }
        Ok(())
    }
}

/// Resolves names in a parsed program, filling `vars` and rewriting
/// `Expr::Name` to `Expr::Var`.
///
/// # Errors
///
/// Returns [`ResolveError`] for unknown names/functions, arity mismatches,
/// or duplicate inputs.
pub fn resolve(mut program: Program) -> Result<Program, ResolveError> {
    let mut r = Resolver { ids: HashMap::new(), names: Vec::new() };
    for input in &program.inputs {
        if r.ids.contains_key(input.as_str()) {
            return Err(ResolveError::DuplicateInput(input.clone()));
        }
        r.declare(input);
    }
    r.collect_assigned(&program.body);
    r.resolve_stmts(&mut program.body)?;
    r.resolve_bool(&mut program.pre)?;
    r.resolve_bool(&mut program.post)?;
    program.vars = r.names;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unresolved;

    fn resolved(src: &str) -> Program {
        resolve(parse_unresolved(src).unwrap()).unwrap()
    }

    #[test]
    fn inputs_come_first() {
        let p = resolved("inputs a, b; x = a + b;");
        assert_eq!(p.vars, vec!["a", "b", "x"]);
        assert_eq!(p.var_id("x"), Some(2));
    }

    #[test]
    fn locals_in_first_assignment_order() {
        let p = resolved("z = 0; y = z; x = y;");
        assert_eq!(p.vars, vec!["z", "y", "x"]);
    }

    #[test]
    fn names_rewritten_to_vars() {
        let p = resolved("inputs a; x = a;");
        let Stmt::Assign { var, value, .. } = &p.body[0] else { panic!() };
        assert_eq!(*var, Some(1));
        assert_eq!(*value, Expr::Var(0));
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = resolve(parse_unresolved("x = y;").unwrap()).unwrap_err();
        assert_eq!(err, ResolveError::UnknownVariable("y".into()));
    }

    #[test]
    fn unknown_function_rejected() {
        let err = resolve(parse_unresolved("x = frob(1);").unwrap()).unwrap_err();
        assert_eq!(err, ResolveError::UnknownFunction("frob".into()));
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = resolve(parse_unresolved("x = gcd(1);").unwrap()).unwrap_err();
        assert!(matches!(err, ResolveError::WrongArity { expected: 2, found: 1, .. }));
    }

    #[test]
    fn duplicate_input_rejected() {
        let err = resolve(parse_unresolved("inputs a, a; x = 1;").unwrap()).unwrap_err();
        assert_eq!(err, ResolveError::DuplicateInput("a".into()));
    }

    #[test]
    fn pre_post_resolved() {
        let p = resolved("inputs n; pre n >= 0; post x == n; x = n;");
        let BoolExpr::Cmp(_, Expr::Var(0), _) = p.pre else {
            panic!("pre not resolved: {:?}", p.pre)
        };
        let BoolExpr::Cmp(_, Expr::Var(1), _) = p.post else {
            panic!("post not resolved: {:?}", p.post)
        };
    }

    #[test]
    fn forward_reference_within_body_ok() {
        // y is assigned later in the program text; collect pass sees it.
        let p = resolved("x = 0; while (x < 2) { x = x + 1; y = x; } z = y;");
        assert!(p.var_id("y").is_some());
    }
}
