//! Property tests for the loop language: lexer totality, parser
//! robustness, and agreement between the integer and real interpreters.

use gcln_lang::interp::{run_program, Nondet, Outcome, RunConfig};
use gcln_lang::lexer::tokenize;
use gcln_lang::parse_program;
use proptest::prelude::*;

proptest! {
    /// The lexer is total: any ASCII input either tokenizes or returns a
    /// clean error — never panics.
    #[test]
    fn lexer_never_panics(s in "[ -~\\n]{0,200}") {
        let _ = tokenize(&s);
    }

    /// The parser is total over token streams built from valid fragments.
    #[test]
    fn parser_never_panics(s in "[a-z0-9 =+\\-*/%(){};<>!&|,]{0,120}") {
        let _ = parse_program(&s);
    }

    /// Nondet is a pure function of its seed.
    #[test]
    fn nondet_deterministic(seed in any::<u64>(), lo in -50i128..50, span in 0i128..50) {
        let hi = lo + span;
        let mut a = Nondet::new(seed);
        let mut b = Nondet::new(seed);
        for _ in 0..10 {
            prop_assert_eq!(a.next_bool(), b.next_bool());
            let (x, y) = (a.next_range(lo, hi), b.next_range(lo, hi));
            prop_assert_eq!(x, y);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    /// On +,-,* programs with integer inputs, the real-relaxed interpreter
    /// agrees exactly with the integer one (the soundness premise of
    /// fractional sampling, §4.3).
    #[test]
    fn real_interpreter_agrees_on_integer_inputs(
        n in 0i128..30,
        step in 1i128..5,
        coef in -4i128..=4,
    ) {
        let src = format!(
            "inputs n; pre n >= 0;
             x = 0; i = 0;
             while (i < n) {{ i = i + {step}; x = x + {coef} * i; }}"
        );
        let p = parse_program(&src).unwrap();
        let int_run = run_program(&p, &[n], &RunConfig::default());
        let real_run = run_program(&p, &[n as f64], &RunConfig::default());
        prop_assert_eq!(int_run.outcome, Outcome::Completed);
        prop_assert_eq!(real_run.outcome, Outcome::Completed);
        prop_assert_eq!(int_run.trace.len(), real_run.trace.len());
        for (a, b) in int_run.env.iter().zip(&real_run.env) {
            prop_assert_eq!(*a as f64, *b);
        }
    }

    /// Truncating division/remainder obey the C identity
    /// `a == (a/b)*b + a%b` in both domains.
    #[test]
    fn div_rem_identity(a in -100i128..100, b in 1i128..20, sign in prop::bool::ANY) {
        let b = if sign { b } else { -b };
        let src = "inputs a, b; q = a / b; r = a % b; chk = q * b + r;";
        let p = parse_program(src).unwrap();
        let run = run_program(&p, &[a, b], &RunConfig::default());
        prop_assert_eq!(run.outcome, Outcome::Completed);
        prop_assert_eq!(run.env[p.var_id("chk").unwrap()], a);
        let real = run_program(&p, &[a as f64, b as f64], &RunConfig::default());
        prop_assert_eq!(real.env[p.var_id("q").unwrap()], run.env[p.var_id("q").unwrap()] as f64);
    }

    /// Loop-head snapshots always belong to declared loops and have full
    /// environment width.
    #[test]
    fn trace_snapshots_are_well_formed(n in 0i128..20) {
        let src = "inputs n; i = 0; t = 0;
                   while (i < n) { j = 0; while (j < 2) { j = j + 1; t = t + 1; } i = i + 1; }";
        let p = parse_program(src).unwrap();
        let run = run_program(&p, &[n], &RunConfig::default());
        for snap in &run.trace {
            prop_assert!(snap.loop_id < p.num_loops);
            prop_assert_eq!(snap.state.len(), p.num_vars());
        }
        // Outer loop tested n+1 times.
        let outer = run.trace.iter().filter(|s| s.loop_id == 0).count();
        prop_assert_eq!(outer as i128, n + 1);
    }
}
