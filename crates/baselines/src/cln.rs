//! The ungated, template-based CLN baseline (CLN2INV / paper \[30\]),
//! used for the Table 4 stability comparison.
//!
//! Unlike the G-CLN, this model needs the formula *structure* up front: a
//! fixed conjunction or disjunction of equality literals over the full
//! term set, with no gates, no dropout, no sparsity/diversity pressure.
//! A run "converges" when every templated literal rounds to a valid atom
//! (and, for disjunctions, the clause covers the data).

use gcln::data::{collect_loop_states, Dataset};
use gcln::extract::{extract_formula, ExtractConfig};
use gcln::model::TrainedGcln;
use gcln::terms::{growth_filter, TermSpace};
use gcln_logic::Formula;
use gcln_problems::Problem;
use gcln_tensor::optim::{project_unit_l2, Adam, OptimizerConfig};
use gcln_tensor::tape::Tape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The formula template the CLN is instantiated with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClnTemplate {
    /// Conjunction of `n` equality literals.
    Conjunction(usize),
    /// Disjunction of `n` equality literals.
    Disjunction(usize),
}

impl ClnTemplate {
    /// The hand-picked template a CLN user would supply for a problem
    /// (this is exactly the information the G-CLN does *not* need).
    pub fn for_problem(problem: &Problem) -> ClnTemplate {
        match problem.name.as_str() {
            "disj-eq" => ClnTemplate::Disjunction(2),
            "ps2" | "ps3" => ClnTemplate::Conjunction(1),
            _ => ClnTemplate::Conjunction(2),
        }
    }
}

/// Result of one randomized CLN training run.
#[derive(Clone, Debug)]
pub struct ClnRun {
    /// Whether the template converged to a data-consistent formula.
    pub converged: bool,
    /// The extracted formula when converged.
    pub formula: Option<Formula>,
    /// Final data loss.
    pub final_loss: f64,
}

/// Trains the template CLN on loop 0 of a problem with the given seed.
pub fn train_template_cln(problem: &Problem, template: ClnTemplate, seed: u64) -> ClnRun {
    let points = collect_loop_states(problem, 0, 60, 2);
    if points.len() < 4 {
        return ClnRun { converged: false, formula: None, final_loss: f64::INFINITY };
    }
    let space = TermSpace::enumerate(problem.extended_names(), problem.max_degree);
    let keep = growth_filter(&space, &points, 1e10);
    let space = space.select(&keep);
    let ds = Dataset::from_points(points.clone(), &space, Some(10.0));
    let columns = ds.columns();
    let num_terms = columns.len();
    let (n_lits, is_disj) = match template {
        ClnTemplate::Conjunction(n) => (n, false),
        ClnTemplate::Disjunction(n) => (n, true),
    };

    // Tape: product (AND) or 1-∏(1-act) (OR) of Gaussian literals.
    let mut tape = Tape::new();
    let xs: Vec<_> = (0..num_terms).map(|t| tape.input(t)).collect();
    let sigma_slot = n_lits * num_terms;
    let neg_half_inv_sigma2 = {
        let sp = tape.param(sigma_slot);
        let s2 = tape.square(sp);
        let two = tape.constant(2.0);
        let t2 = tape.mul(two, s2);
        let r = tape.recip(t2);
        tape.neg(r)
    };
    let one = tape.constant(1.0);
    let mut acc = None;
    for li in 0..n_lits {
        let ws: Vec<_> = (0..num_terms).map(|t| tape.param(li * num_terms + t)).collect();
        let z = tape.affine(&ws, &xs, None);
        let act = tape.gaussian(z, neg_half_inv_sigma2);
        let factor = if is_disj { tape.sub(one, act) } else { act };
        acc = Some(match acc {
            None => factor,
            Some(a) => tape.mul(a, factor),
        });
    }
    let m = if is_disj {
        let prod = acc.expect("template has literals");
        tape.sub(one, prod)
    } else {
        acc.expect("template has literals")
    };
    let dis = tape.sub(one, m);
    let loss = tape.mean_batch(dis);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = vec![0.0; n_lits * num_terms + 1];
    for li in 0..n_lits {
        let w = &mut params[li * num_terms..(li + 1) * num_terms];
        w.iter_mut().for_each(|x| *x = rng.gen::<f64>() * 2.0 - 1.0);
        project_unit_l2(w);
    }
    let max_epochs = 1500;
    let anneal = 900.0;
    let mut adam = Adam::new(params.len(), OptimizerConfig::default());
    for epoch in 0..max_epochs {
        let t = (epoch as f64 / anneal).min(1.0);
        params[sigma_slot] = 5.0 * (0.1f64 / 5.0).powf(t);
        let (_, mut grads) = tape.eval_with_grad(loss, &columns, &params);
        grads[sigma_slot] = 0.0;
        adam.step(&mut params, &grads);
        for li in 0..n_lits {
            project_unit_l2(&mut params[li * num_terms..(li + 1) * num_terms]);
        }
    }
    params[sigma_slot] = 0.1;
    let final_loss = tape.forward(loss, &columns, &params);

    // Reuse the G-CLN extraction by wrapping the weights in a fully-open
    // gated model shaped like the template.
    let (clause_gates, literal_gates, weights) = if is_disj {
        (
            vec![1.0],
            vec![vec![1.0; n_lits]],
            vec![(0..n_lits)
                .map(|li| params[li * num_terms..(li + 1) * num_terms].to_vec())
                .collect::<Vec<_>>()],
        )
    } else {
        (
            vec![1.0; n_lits],
            vec![vec![1.0]; n_lits],
            (0..n_lits)
                .map(|li| vec![params[li * num_terms..(li + 1) * num_terms].to_vec()])
                .collect(),
        )
    };
    let masks = weights
        .iter()
        .map(|c| c.iter().map(|w| vec![true; w.len()]).collect())
        .collect();
    let model = TrainedGcln {
        clause_gates,
        literal_gates,
        weights,
        masks,
        final_loss,
        epochs_run: max_epochs,
    };
    let formula = extract_formula(&model, &space, &points, &ExtractConfig::default());
    let expected_atoms = n_lits;
    let converged = final_loss < 0.05 && formula.atoms().len() >= expected_atoms;
    ClnRun { converged, formula: Some(formula), final_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_problems::find_problem;

    #[test]
    fn template_selection() {
        let disj = find_problem("disj-eq").unwrap();
        assert_eq!(ClnTemplate::for_problem(&disj), ClnTemplate::Disjunction(2));
        let ps2 = find_problem("ps2").unwrap();
        assert_eq!(ClnTemplate::for_problem(&ps2), ClnTemplate::Conjunction(1));
    }

    #[test]
    fn cln_converges_on_some_seed_for_ps2() {
        let problem = find_problem("ps2").unwrap();
        let any = (0..5).any(|seed| {
            train_template_cln(&problem, ClnTemplate::Conjunction(1), seed).converged
        });
        assert!(any, "CLN should converge on ps2 for at least one of 5 seeds");
    }

    #[test]
    fn cln_is_not_perfectly_stable_on_disjunction() {
        // The Table 4 point: the ungated CLN fails on a nontrivial
        // fraction of random initializations. We only assert it does not
        // crash and reports a loss.
        let problem = find_problem("disj-eq").unwrap();
        let run = train_template_cln(&problem, ClnTemplate::Disjunction(2), 1);
        assert!(run.final_loss.is_finite());
    }
}
