//! # gcln-baselines — the comparison systems of Table 2 and Table 4
//!
//! Faithful re-implementations of the baselines' *decision behaviour*:
//!
//! - [`cln`]: the ungated, template-based CLN (CLN2INV) for the Table 4
//!   stability study.
//! - [`guess_and_check`]: polynomial-kernel equality solving (learns no
//!   inequalities or disjunctions).
//! - [`octahedral`]: NumInv-style `±x ±y ≤ c` bound inference (learns no
//!   nonlinear or 3-variable inequalities).
//! - [`pie`]: PIE-style predicate enumeration (explodes on nonlinear
//!   grammars).

pub mod cln;
pub mod guess_and_check;
pub mod octahedral;
pub mod pie;
