//! Guess-and-Check-style polynomial **equality** solving (Sharma et al.,
//! ESOP'13 — the paper's \[33\]): the exact null space of the expanded
//! trace matrix is the space of equality invariants over the candidate
//! terms. Learns only equalities — no disjunctions, no inequalities —
//! which is precisely the limitation Table 2's comparison turns on.

use gcln::data::collect_loop_states;
use gcln::kernel::kernel_equalities;
use gcln::terms::{growth_filter_with_duplicates, TermSpace};
use gcln_logic::{Atom, Formula};
use gcln_problems::Problem;

/// Equality invariants for one loop, via the polynomial kernel.
pub fn guess_and_check(problem: &Problem, loop_id: usize) -> Vec<Atom> {
    let points = collect_loop_states(problem, loop_id, 120, 2);
    if points.is_empty() {
        return Vec::new();
    }
    let space = TermSpace::enumerate(problem.extended_names(), problem.max_degree);
    let filtered = growth_filter_with_duplicates(&space, &points, 1e10);
    let mut atoms: Vec<Atom> = filtered
        .duplicates
        .iter()
        .map(|&(dropped, kept)| {
            use gcln_numeric::{Poly, Rat};
            let poly = (&Poly::from_monomial(space.monomials[dropped].clone(), Rat::ONE)
                - &Poly::from_monomial(space.monomials[kept].clone(), Rat::ONE))
                .normalize_content();
            Atom::new(poly, gcln_logic::Pred::Eq)
        })
        .collect();
    let space = space.select(&filtered.keep);
    atoms.extend(kernel_equalities(&space, &points, 250, 1_000_000));
    atoms
}

/// The conjunction of all per-loop equality invariants.
pub fn guess_and_check_formula(problem: &Problem, loop_id: usize) -> Formula {
    Formula::and(guess_and_check(problem, loop_id).into_iter().map(Formula::Atom)).simplify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_checker::{equalities_imply, equality_polys};
    use gcln_numeric::groebner::GroebnerLimits;
    use gcln_problems::nla::nla_problem;

    #[test]
    fn finds_cohencu_equalities() {
        let problem = nla_problem("cohencu").unwrap();
        let formula = guess_and_check_formula(&problem, 0);
        let names = problem.extended_names();
        let gt = gcln_logic::parse_formula(
            "x == n^3 && y == 3 * n^2 + 3 * n + 1 && z == 6 * n + 6",
            &names,
        )
        .unwrap();
        assert_eq!(
            equalities_imply(&formula, &equality_polys(&gt), GroebnerLimits::default()),
            Some(true),
            "G&C misses cohencu equalities: {}",
            formula.display(&names)
        );
    }

    #[test]
    fn cannot_express_inequalities() {
        // sqrt1's crucial invariant n >= a^2 is invisible to G&C.
        let problem = nla_problem("sqrt1").unwrap();
        let atoms = guess_and_check(&problem, 0);
        assert!(atoms.iter().all(|a| a.pred == gcln_logic::Pred::Eq));
    }
}
