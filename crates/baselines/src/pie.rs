//! A PIE-style enumerative baseline (Padhi et al., the paper's \[26\]):
//! guess atomic predicates from a template grammar in increasing size,
//! conjoin the consistent ones, and give up when the feature budget is
//! exhausted. On nonlinear problems the predicate space explodes — the
//! paper reports PIE timing out on every attempted NLA problem — and
//! this reproduction exposes the same blow-up via its budget counter.

use gcln::data::collect_loop_states;
use gcln::extract::FitPoints;
use gcln::terms::TermSpace;
use gcln_logic::{Atom, Formula, Pred};
use gcln_numeric::{Poly, Rat};
use gcln_problems::Problem;

/// Outcome of an enumeration run.
#[derive(Clone, Debug)]
pub struct PieResult {
    /// Consistent predicates found within budget.
    pub formula: Formula,
    /// Predicates enumerated.
    pub enumerated: usize,
    /// Whether the budget ran out before the grammar was exhausted
    /// (the "timeout" of Table 2).
    pub budget_exhausted: bool,
}

/// Enumerates candidate predicates `±t ± t' + c ⋈ 0` with small integer
/// constants over the term grammar, keeping those consistent with traces.
pub fn pie_enumerate(problem: &Problem, loop_id: usize, budget: usize) -> PieResult {
    let points = collect_loop_states(problem, loop_id, 60, 1);
    // One point conversion shared by every enumerated candidate.
    let fit = FitPoints::new(&points);
    let space = TermSpace::enumerate(problem.extended_names(), problem.max_degree);
    let arity = problem.extended_names().len();
    let mut enumerated = 0;
    let mut kept = Vec::new();
    let mut budget_exhausted = false;
    'outer: for i in 0..space.len() {
        for j in 0..space.len() {
            for (si, sj) in [(1i128, 0i128), (1, 1), (1, -1)] {
                for c in -4i128..=4 {
                    for pred in [Pred::Eq, Pred::Ge] {
                        enumerated += 1;
                        if enumerated > budget {
                            budget_exhausted = true;
                            break 'outer;
                        }
                        let mut poly = Poly::constant(Rat::integer(c), arity);
                        poly.add_term(Rat::integer(si), space.monomials[i].clone());
                        if sj != 0 && j != i {
                            poly.add_term(Rat::integer(sj), space.monomials[j].clone());
                        }
                        if poly.is_zero() || poly.is_constant() {
                            continue;
                        }
                        if kept.len() < 64 && fit.fits(&poly, pred, 1e-9) {
                            // Output stays bounded; enumeration continues
                            // so the budget counter reflects the grammar.
                            kept.push(Formula::Atom(Atom::new(poly, pred)));
                        }
                    }
                }
            }
        }
    }
    PieResult { formula: Formula::and(kept).simplify(), enumerated, budget_exhausted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_problems::nla::nla_problem;

    #[test]
    fn explodes_on_nonlinear_term_space() {
        // With the budget the linear problems need, the nonlinear grammar
        // is not even half enumerated: the Table 2 "timeout" shape.
        let problem = nla_problem("ps4").unwrap();
        let result = pie_enumerate(&problem, 0, 20_000);
        assert!(result.budget_exhausted, "ps4 grammar should exhaust the budget");
    }

    #[test]
    fn handles_simple_linear_problem() {
        let problem = gcln_problems::find_problem("lin-up-01").unwrap();
        let result = pie_enumerate(&problem, 0, 200_000);
        assert!(!result.budget_exhausted);
        let names = problem.extended_names();
        let text = result.formula.display(&names).to_string();
        assert!(text.contains(">="), "some bound found: {text}");
    }
}
