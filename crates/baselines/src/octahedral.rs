//! NumInv-style **octahedral** inequality inference (Nguyen et al., the
//! paper's \[21\]): bounds of the form `±x ±y ≤ c` over program variables
//! only — coefficients in {−1, 0, 1}, at most two variables. The paper's
//! point (§7): NumInv cannot infer the nonlinear or three-variable
//! inequalities the benchmark needs; this module reproduces exactly that
//! expressiveness ceiling.

use gcln::data::collect_loop_states;
use gcln_logic::{Atom, Pred};
use gcln_numeric::{Monomial, Poly, Rat};
use gcln_problems::Problem;

/// Infers octahedral bounds for one loop from traces.
pub fn octahedral_bounds(problem: &Problem, loop_id: usize) -> Vec<Atom> {
    let points = collect_loop_states(problem, loop_id, 120, 2);
    if points.is_empty() {
        return Vec::new();
    }
    let arity = problem.extended_names().len();
    let nvars = problem.program.num_vars();
    let mut out = Vec::new();
    let mut directions: Vec<Vec<(usize, i128)>> = Vec::new();
    for i in 0..nvars {
        directions.push(vec![(i, 1)]);
        directions.push(vec![(i, -1)]);
        for j in (i + 1)..nvars {
            for (si, sj) in [(1, 1), (1, -1), (-1, 1), (-1, -1)] {
                directions.push(vec![(i, si), (j, sj)]);
            }
        }
    }
    for dir in directions {
        let value = |p: &Vec<f64>| dir.iter().map(|&(v, s)| s as f64 * p[v]).sum::<f64>();
        let min = points.iter().map(value).fold(f64::INFINITY, f64::min);
        if !min.is_finite() || min.abs() > 1e15 {
            continue;
        }
        // dir·x >= min  ⇔  dir·x − min >= 0
        let mut poly = Poly::constant(Rat::integer(-(min as i128)), arity);
        for &(v, s) in &dir {
            poly.add_term(Rat::integer(s), Monomial::var(v, arity));
        }
        out.push(Atom::new(poly, Pred::Ge));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcln_problems::nla::nla_problem;

    #[test]
    fn bounds_are_valid_and_octahedral() {
        let problem = nla_problem("ps2").unwrap();
        let atoms = octahedral_bounds(&problem, 0);
        assert!(!atoms.is_empty());
        let points = gcln::data::collect_loop_states(&problem, 0, 60, 1);
        for a in &atoms {
            assert!(a.poly.degree() <= 1, "octahedral bounds are linear");
            assert!(
                gcln::extract::atom_fits(&a.poly, Pred::Ge, &points, 1e-9),
                "bound violated on data"
            );
        }
    }
}
